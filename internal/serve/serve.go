// Package serve is the fingerprinting-as-a-service layer: a long-running
// daemon (cmd/odcfpd) that turns the paper's one-shot CLI workflow —
// analyse a netlist for ODC fingerprint locations, issue a uniquely
// fingerprinted copy per buyer, trace a suspect copy back to its buyer
// (Dunbar & Qu §III) — into a concurrent HTTP/JSON request/response
// protocol, the "online interrogation" shape related watermarking work
// (SIGNED) frames IP protection in.
//
// The server's economics come from doing the expensive step once: location
// analysis (core.Analyze) runs at upload time and the resulting
// core.Analysis is held in an LRU cache keyed by the design digest, so
// issuance and tracing — which the CLI pays a full re-analysis for on
// every invocation — reuse it. Work is admitted through a bounded
// par.Pool with per-request timeouts and request-size limits; issued
// fingerprints persist through a crash-safe Store (temp file + fsync +
// rename) and survive restarts; everything is instrumented with
// internal/obs and exposed at GET /metrics.
//
// API (see DESIGN.md §9 for schemas):
//
//	POST /designs                 upload a netlist → analyse once → digest
//	GET  /designs                 list stored designs
//	GET  /designs/{digest}        one design's analysis + registry summary
//	POST /designs/{digest}/issue  mint a fingerprinted copy for a buyer
//	POST /designs/{digest}/issue/batch
//	                              mint copies for many buyers in one call,
//	                              synchronously or (?async=1) as a durable
//	                              202+job, amortizing one analysis, one CEC
//	                              session and chunked registry fsyncs
//	POST /designs/{digest}/trace  score a suspect copy against the registry
//	GET  /jobs                    list async issuance jobs
//	GET  /jobs/{id}               one job's progress (acknowledged buyers)
//	GET  /healthz                 liveness + drain state
//	GET  /metrics                 obs metric snapshot (JSON)
package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/blif"
	"repro/internal/cell"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/registry"
	"repro/internal/registrystore"
	"repro/internal/techmap"
	"repro/internal/verilog"
)

// Request metrics: traffic counters are workload-determined; latency and
// in-flight depend on wall time and scheduling.
var (
	mRequests = obs.NewCounter("serve", "requests")
	mErrors   = obs.NewCounter("serve", "request_errors")
	mUploads  = obs.NewCounter("serve", "uploads")
	mIssues   = obs.NewCounter("serve", "issues")
	mTraces   = obs.NewCounter("serve", "traces")
	// Trace outcomes: accusations counts buyers implicated across all trace
	// calls (one call can implicate a whole coalition); misses counts trace
	// calls that implicated nobody — full removals, foreign netlists, or
	// sub-threshold evidence. A rising miss rate against known-fingerprinted
	// inventory is the operator's signal that attacks are succeeding.
	mTraceAccusations = obs.NewCounter("serve", "trace_accusations")
	mTraceMisses      = obs.NewCounter("serve", "trace_misses")
	mTimeouts         = obs.NewCounter("serve", "request_timeouts", obs.Nondet())
	hLatencyNS        = obs.NewHistogram("serve", "request_ns", obs.Nondet())
	// hAnalyzeUS records the latency of each completed analysis (the
	// daemon's dominant unit of compute) in microseconds; the exported name
	// keeps the seconds-oriented spelling, and consumers such as the loadgen
	// report convert the sum back to wall seconds.
	hAnalyzeUS = obs.NewHistogram("serve", "analyze_secs", obs.Nondet())
	gInFlight  = obs.NewGauge("serve", "inflight", obs.Nondet())
	gDesigns   = obs.NewGauge("serve", "designs")
)

// Config tunes the daemon. The zero value is usable: every field has a
// production default applied by New.
type Config struct {
	// StoreDir is the durable store's root directory (required).
	StoreDir string
	// CacheSize bounds the analysis LRU (default 64 designs).
	CacheSize int
	// Workers bounds concurrently executing requests (default: one per
	// CPU, par.Workers(0)).
	Workers int
	// MaxRequestBytes bounds any request body (default 16 MiB).
	MaxRequestBytes int64
	// RequestTimeout bounds one request's queueing + execution time
	// (default 60s).
	RequestTimeout time.Duration
	// VerifyIssues proves every issued copy functionally equivalent to the
	// master (shared incremental CEC session) before returning it. Clients
	// can also request this per call with ?verify=1.
	VerifyIssues bool
	// RetryAttempts bounds tries for transient store errors (default 3).
	RetryAttempts int
	// RetryBase is the first backoff delay; later tries double it and add
	// jitter (default 5ms).
	RetryBase time.Duration
	// BreakerThreshold is the consecutive SAT-verification failure count
	// that trips the degraded-verification circuit breaker (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker stays open before
	// admitting a probe (default 30s).
	BreakerCooldown time.Duration
	// MaxQueueDepth sheds requests (429 + Retry-After) once this many
	// callers queue for a worker slot (default 4×Workers; <0 disables).
	MaxQueueDepth int
	// BatchChunk is how many copies a batch issue commits per durable
	// registry+job write (default 64). Larger chunks amortize fsyncs
	// harder; smaller ones bound the work re-done after a crash.
	BatchChunk int
	// MaxBatchBuyers caps the buyers of one synchronous batch request
	// (default 256); larger batches must use the async job mode, whose
	// runner yields its worker slot between chunks.
	MaxBatchBuyers int
	// Cluster, when non-nil, runs this daemon as one replica of an odcfpd
	// cluster: the issuance registry moves from per-design JSON snapshots to
	// a replicated WAL, and design-scoped requests are routed to each
	// design's leader (cluster.go). Nil is the single-node daemon.
	Cluster *ClusterConfig
}

func (c Config) withDefaults() Config {
	if c.CacheSize == 0 {
		c.CacheSize = 64
	}
	if c.Workers == 0 {
		c.Workers = par.Workers(0)
	}
	if c.MaxRequestBytes == 0 {
		c.MaxRequestBytes = 16 << 20
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.RetryAttempts == 0 {
		c.RetryAttempts = 3
	}
	if c.RetryBase == 0 {
		c.RetryBase = 5 * time.Millisecond
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = 30 * time.Second
	}
	if c.MaxQueueDepth == 0 {
		c.MaxQueueDepth = 4 * c.Workers
	}
	if c.BatchChunk <= 0 {
		c.BatchChunk = 64
	}
	if c.MaxBatchBuyers <= 0 {
		c.MaxBatchBuyers = 256
	}
	return c
}

// design is the server's per-digest state. The registry is loaded lazily
// and mu serialises issue+persist so the durable record set is always a
// superset of every acknowledged issuance. regSeq is the registry store's
// sequence number the in-memory registry was loaded at (or last appended
// at); when the store has moved past it — a replicating peer appended —
// the registry is reloaded before its next use.
type design struct {
	digest string
	meta   DesignMeta

	mu     sync.Mutex
	reg    *registry.Registry
	regSeq uint64
}

// Server is the fingerprinting daemon: an http.Handler plus the cache,
// store, worker pool and lifecycle around it. Create with New; serve
// either via Serve/ListenAndServe or by mounting Handler in a test server.
type Server struct {
	cfg      Config
	store    *Store
	regstore registrystore.Store
	cluster  *clusterState // nil when not clustered
	cache    *analysisCache
	pool     *par.Pool
	breaker  *breaker

	mu      sync.Mutex
	designs map[string]*design

	// Async issuance jobs (jobs.go): records mirror the durable job files;
	// jobWake nudges the runner goroutine, runnerCancel kills it.
	jobMu        sync.Mutex
	jobs         map[string]*JobRecord
	jobWake      chan struct{}
	runnerCancel context.CancelFunc
	runnerDone   chan struct{}

	// bgCtx parents background cluster work (design broadcasts, startup
	// catch-up); it is the job runner's context, cancelled at Shutdown.
	bgCtx    context.Context
	syncDone chan struct{} // closed when startup cluster catch-up finishes

	draining atomic.Bool
	httpSrv  *http.Server

	// testHook, when non-nil (tests only), runs while the request holds a
	// worker slot, keyed by request kind ("issue", "trace", "upload") —
	// the job runner also fires it with "job-chunk" after each durable
	// chunk commit.
	testHook func(kind string)
}

// New opens the store, reloads every persisted design (analysis stays lazy
// — the cache fills on first use) and returns a ready-to-serve daemon.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.StoreDir == "" {
		return nil, fmt.Errorf("serve: Config.StoreDir is required")
	}
	store, err := OpenStore(cfg.StoreDir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		store:   store,
		cache:   newAnalysisCache(cfg.CacheSize),
		pool:    par.NewPool(cfg.Workers),
		breaker: newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		designs: make(map[string]*design),
		jobs:    make(map[string]*JobRecord),
		jobWake: make(chan struct{}, 1),
	}
	if err := s.openRegistryStore(); err != nil {
		return nil, err
	}
	digests, err := store.Digests()
	if err != nil {
		return nil, err
	}
	for _, dg := range digests {
		meta, err := store.LoadMeta(dg)
		if err != nil {
			return nil, err
		}
		s.designs[dg] = &design{digest: dg, meta: meta}
	}
	gDesigns.Set(int64(len(s.designs)))
	if err := s.loadJobs(); err != nil {
		return nil, err
	}
	s.httpSrv = &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	runnerCtx, cancel := context.WithCancel(context.Background())
	s.runnerCancel = cancel
	s.runnerDone = make(chan struct{})
	s.bgCtx = runnerCtx
	go s.runJobs(runnerCtx)
	s.startClusterSync(runnerCtx)
	return s, nil
}

// Handler returns the daemon's HTTP handler (also usable under httptest).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /designs", s.handleUpload)
	mux.HandleFunc("GET /designs", s.handleList)
	mux.HandleFunc("GET /designs/{digest}", s.handleInfo)
	mux.HandleFunc("POST /designs/{digest}/issue", s.handleIssue)
	mux.HandleFunc("POST /designs/{digest}/issue/batch", s.handleBatchIssue)
	mux.HandleFunc("POST /designs/{digest}/trace", s.handleTrace)
	mux.HandleFunc("GET /jobs", s.handleJobList)
	mux.HandleFunc("GET /jobs/{id}", s.handleJobStatus)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.cluster != nil {
		// Peer-to-peer endpoints (cluster.go). They bypass the worker pool:
		// replication is fsync-bound, and a follower that needed a worker
		// slot to ack could deadlock against a leader waiting in one.
		mux.HandleFunc("POST /cluster/replicate/{digest}", s.handleReplicate)
		mux.HandleFunc("GET /cluster/registry/{digest}", s.handleRegistryFetch)
		mux.HandleFunc("PUT /cluster/designs/{digest}", s.handleDesignPush)
		mux.HandleFunc("GET /cluster/designs/{digest}", s.handleDesignFetch)
		mux.HandleFunc("GET /cluster/status", s.handleClusterStatus)
	}
	return s.instrument(mux)
}

// instrument wraps the mux with the request counter, in-flight gauge and
// latency histogram. Clustered daemons also stamp every response with the
// node that served it, so clients (and loadgen's shard-balance report) can
// see where routed work actually landed.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mRequests.Inc()
		gInFlight.Add(1)
		defer gInFlight.Add(-1)
		if s.cluster != nil {
			w.Header().Set(nodeHeader, s.cluster.cfg.Self)
		}
		t0 := time.Now()
		next.ServeHTTP(w, r)
		hLatencyNS.Observe(int64(time.Since(t0)))
	})
}

// Serve accepts connections on ln until Shutdown. It returns nil after a
// clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	err := s.httpSrv.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// ListenAndServe binds addr and calls Serve.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Shutdown drains the daemon gracefully: the listener closes, in-flight
// requests run to completion (bounded by ctx), the job runner stops at its
// next chunk boundary (unfinished jobs stay durable and resume on the next
// New over the same store), then the worker pool is closed. Safe to call
// even when Serve was never started.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	err := s.httpSrv.Shutdown(ctx)
	s.runnerCancel()
	<-s.runnerDone
	if s.syncDone != nil {
		<-s.syncDone
	}
	if s.cluster != nil {
		s.cluster.wg.Wait()
	}
	s.pool.Close()
	if cerr := s.regstore.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// InFlight returns the number of requests currently holding worker slots.
func (s *Server) InFlight() int { return s.pool.InFlight() }

// NumDesigns returns the number of designs the daemon can serve.
func (s *Server) NumDesigns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.designs)
}

// lookupDesign returns the design for digest, or nil.
func (s *Server) lookupDesign(digest string) *design {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.designs[digest]
}

// analysis returns the design's cached analysis, re-running the upload
// path (parse stored bytes → sweep → analyze) on a cache miss and
// verifying the recomputed digest still matches the stored one. ctx bounds
// only how long this caller waits: the load itself runs detached under its
// own RequestTimeout deadline, so a caller that cancels mid-flight fails
// alone — the (singleflight-shared) analysis still completes for every
// other waiter and lands in the cache.
func (s *Server) analysis(ctx context.Context, d *design) (*core.Analysis, error) {
	return s.cache.getOrLoad(ctx, d.digest, func() (*core.Analysis, error) {
		lctx, cancel := context.WithTimeout(context.Background(), s.cfg.RequestTimeout)
		defer cancel()
		fault.Stall(fault.AnalysisSlow)
		meta, raw, err := s.store.LoadDesign(d.digest)
		if err != nil {
			return nil, err
		}
		c, err := parseNetlist(meta.Format, raw)
		if err != nil {
			return nil, fmt.Errorf("serve: stored design %s: %w", d.digest, err)
		}
		a, err := analyzeUpload(lctx, c)
		if err != nil {
			return nil, fmt.Errorf("serve: stored design %s: %w", d.digest, err)
		}
		if got := registry.DesignDigest(a); got != d.digest {
			return nil, fmt.Errorf("serve: stored design %s re-analyses to digest %s (store corrupted?)", d.digest, got)
		}
		return a, nil
	})
}

// registryOf returns the design's registry, loading it on first use.
func (s *Server) registryOf(d *design, a *core.Analysis) (*registry.Registry, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return s.ensureRegistryLocked(d, a)
}

// ensureRegistryLocked loads or creates the registry; the caller must hold
// d.mu. A registry whose load-time sequence number the store has moved past
// — a replicating peer appended records this process has not seen — is
// reloaded, so reads on a follower converge to the replicated record set.
func (s *Server) ensureRegistryLocked(d *design, a *core.Analysis) (*registry.Registry, error) {
	if d.reg != nil && s.regstore.Seq(d.digest) == d.regSeq {
		return d.reg, nil
	}
	r, seq, err := s.regstore.Load(d.digest, a)
	if err != nil {
		return nil, err
	}
	d.reg, d.regSeq = r, seq
	return r, nil
}

// analyzeUpload is the canonical upload pipeline: sweep dead logic, then
// analyse with the default library and options — byte-identical to the
// CLI's registry-facing commands, so daemon digests match odcfp's. ctx
// cancels the scan (core.AnalyzeCtx).
func analyzeUpload(ctx context.Context, c *circuit.Circuit) (*core.Analysis, error) {
	swept, _ := c.Sweep()
	start := time.Now()
	a, err := core.AnalyzeCtx(ctx, swept, core.DefaultOptions(cell.Default()))
	if err == nil {
		hAnalyzeUS.Observe(time.Since(start).Microseconds())
	}
	return a, err
}

// parseNetlist decodes data in the given format: "bench", "blif" or
// "v"/"verilog". BLIF input is technology-mapped onto the default library.
func parseNetlist(format string, data []byte) (*circuit.Circuit, error) {
	switch strings.ToLower(format) {
	case "bench":
		return benchfmt.Parse(bytes.NewReader(data))
	case "blif":
		n, err := blif.Parse(bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		return techmap.Map(n, techmap.DefaultOptions(cell.Default()))
	case "v", "verilog":
		return verilog.Parse(bytes.NewReader(data))
	default:
		return nil, fmt.Errorf("unknown netlist format %q (want bench, blif or v)", format)
	}
}

// writeNetlist encodes c in the given output format ("bench" or "v").
func writeNetlist(w io.Writer, format string, c *circuit.Circuit) error {
	switch strings.ToLower(format) {
	case "bench":
		return benchfmt.Write(w, c)
	case "v", "verilog":
		return verilog.Write(w, c)
	default:
		return fmt.Errorf("unknown output format %q (want bench or v)", format)
	}
}

// detectFormat sniffs a netlist's format from its content: BLIF models
// start with dot-directives, Verilog declares a module, everything else is
// treated as ISCAS .bench (whose INPUT(...) lines are unmistakable anyway).
func detectFormat(data []byte) string {
	for _, line := range strings.Split(string(data), "\n") {
		t := strings.TrimSpace(line)
		switch {
		case t == "" || strings.HasPrefix(t, "#") || strings.HasPrefix(t, "//"):
			continue
		case strings.HasPrefix(t, "."):
			return "blif"
		case strings.HasPrefix(t, "module"):
			return "v"
		default:
			return "bench"
		}
	}
	return "bench"
}

// outputFormat picks the issue-response encoding: an explicit query wins,
// then the design's own upload format when it round-trips ("bench", "v"),
// else structural Verilog.
func outputFormat(query, designFormat string) string {
	if query != "" {
		return query
	}
	switch designFormat {
	case "bench", "v", "verilog":
		return designFormat
	default:
		return "v"
	}
}
