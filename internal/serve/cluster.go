package serve

// Cluster mode (DESIGN.md §13): N odcfpd replicas, each a full copy of the
// stateless API layer, share the issuance load by design digest. A
// consistent-hash ring over the replica set names each design's leader;
// any replica accepts any request and routes design-scoped calls to the
// leader (or serves them itself when it leads, or when every preferred
// peer is unreachable — safe, because the registry store replicates every
// record to every node and converges by union). The peer-to-peer endpoints
// under /cluster/* carry replication, catch-up and design distribution;
// they bypass the worker pool so a follower can always ack a leader's
// replication even when its own workers are saturated.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/registrystore"
)

// Cluster routing metrics: forwarding and peer liveness depend on request
// arrival node and failure timing.
var (
	mForwards     = obs.NewCounter("serve", "cluster_forwards", obs.Nondet())
	mForwardFails = obs.NewCounter("serve", "cluster_forward_errors", obs.Nondet())
	mReplApplied  = obs.NewCounter("serve", "cluster_replica_appends", obs.Nondet())
	mDesignAdopts = obs.NewCounter("serve", "cluster_design_adopts", obs.Nondet())
	mTraceRepairs = obs.NewCounter("serve", "cluster_trace_repairs", obs.Nondet())
)

// Cluster request headers.
const (
	// nodeHeader names the replica that actually served a response.
	nodeHeader = "X-Odcfp-Node"
	// forwardedHeader marks a request already routed once; the receiver
	// serves it locally, which bounds every request to at most one hop.
	forwardedHeader = "X-Odcfp-Forwarded"
	// formatHeader and designHeader carry DesignMeta on /cluster/designs
	// pushes and fetches.
	formatHeader = "X-Odcfp-Format"
	designHeader = "X-Odcfp-Design"
)

// Per-peer routing breaker tuning: one failed forward marks the peer
// suspect quickly (a dead loopback peer fails in microseconds) and a probe
// retries it after the cooldown.
const (
	peerBreakerThreshold = 1
	peerBreakerCooldown  = 2 * time.Second
)

// ClusterConfig makes the daemon one replica of an odcfpd cluster. Nodes
// are identified by their advertised base URL (scheme://host:port).
type ClusterConfig struct {
	// Self is this node's advertised base URL; it must appear in Nodes.
	Self string
	// Nodes is the full replica set, self included.
	Nodes []string
	// ReplicationFactor is the write quorum W including the leader: an
	// issuance acknowledges only once W replicas hold its record durably.
	// 0 means 2, capped at len(Nodes).
	ReplicationFactor int
	// AckTimeout bounds one peer replication attempt (0 means 5s).
	AckTimeout time.Duration
	// HintRetry is the base interval between hinted-handoff redelivery
	// attempts (0 means 500ms).
	HintRetry time.Duration
	// ScrubInterval is how often the WAL scrubber re-verifies every
	// segment (0 means 1m; negative disables the background loop).
	ScrubInterval time.Duration
}

// clusterState is the server's runtime cluster machinery.
type clusterState struct {
	cfg    ClusterConfig
	ring   *registrystore.Ring
	store  *registrystore.Replicated
	client *http.Client

	mu       sync.Mutex
	breakers map[string]*breaker

	wg sync.WaitGroup // background broadcasts
}

// linkFault consults the armed fault plan (if any) for the self→node
// network link: a severed or dropped link fails the exchange before any
// bytes move, and a delayed one stalls it — how -faults plans partition and
// degrade specific replica links deterministically (net.partition,
// net.drop, net.delay). The registrystore replication paths run the same
// check; this covers the serve-layer peer exchanges (forwarding, design
// push/fetch, job probes).
func (cs *clusterState) linkFault(node string) error {
	return fault.Link(cs.cfg.Self, node)
}

// breakerFor returns the peer's routing breaker, creating it on first use.
func (cs *clusterState) breakerFor(node string) *breaker {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	b := cs.breakers[node]
	if b == nil {
		b = newBreaker(peerBreakerThreshold, peerBreakerCooldown)
		cs.breakers[node] = b
	}
	return b
}

// openRegistryStore picks the registry store implementation: the local
// snapshot store for a single-node daemon, the replicated WAL for a
// cluster replica.
func (s *Server) openRegistryStore() error {
	cc := s.cfg.Cluster
	if cc == nil {
		ls, err := registrystore.OpenLocal(s.cfg.StoreDir)
		if err != nil {
			return err
		}
		s.regstore = ls
		return nil
	}
	if err := validateClusterConfig(cc); err != nil {
		return err
	}
	cs := &clusterState{
		cfg:      *cc,
		ring:     registrystore.NewRing(cc.Nodes),
		client:   &http.Client{},
		breakers: make(map[string]*breaker),
	}
	rs, err := registrystore.OpenReplicated(registrystore.ReplicatedConfig{
		Dir:           filepath.Join(s.cfg.StoreDir, "wal"),
		Self:          cc.Self,
		Nodes:         cc.Nodes,
		W:             cc.ReplicationFactor,
		Transport:     &peerTransport{cs: cs},
		AckTimeout:    cc.AckTimeout,
		HintRetry:     cc.HintRetry,
		ScrubInterval: cc.ScrubInterval,
	})
	if err != nil {
		return err
	}
	cs.store = rs
	s.cluster = cs
	s.regstore = rs
	return nil
}

// validateClusterConfig rejects malformed replica sets before any state is
// created.
func validateClusterConfig(cc *ClusterConfig) error {
	if cc.Self == "" {
		return fmt.Errorf("serve: cluster: Self is required")
	}
	self := false
	for _, n := range cc.Nodes {
		if n == cc.Self {
			self = true
		}
		u, err := url.Parse(n)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return fmt.Errorf("serve: cluster: node %q is not a base URL (want scheme://host:port)", n)
		}
	}
	if !self {
		return fmt.Errorf("serve: cluster: Self %q not in Nodes %v", cc.Self, cc.Nodes)
	}
	return nil
}

// startClusterSync launches the restarted-follower catch-up: pull every
// known design's records from every peer in the background. Appends dedup,
// so syncing is idempotent and safe to race with live traffic.
func (s *Server) startClusterSync(ctx context.Context) {
	if s.cluster == nil {
		return
	}
	s.syncDone = make(chan struct{})
	digests, _ := s.store.Digests()
	go func() {
		defer close(s.syncDone)
		s.cluster.store.Sync(ctx, digests)
	}()
}

// routeDesign resolves a design-scoped request: on a single-node daemon it
// is a plain lookup; on a cluster replica the request is forwarded to the
// design's leader unless this node is the first live replica in the
// design's preference order (or the request already made its one hop). It
// returns nil when the request was fully handled — proxied or rejected.
func (s *Server) routeDesign(w http.ResponseWriter, r *http.Request) *design {
	digest := r.PathValue("digest")
	d := s.lookupDesign(digest)
	if s.cluster == nil {
		if d == nil {
			writeError(w, http.StatusNotFound, "unknown design "+digest)
		}
		return d
	}
	if r.Header.Get(forwardedHeader) == "" && s.routeToLeader(w, r, digest) {
		return nil
	}
	if d == nil {
		// Serving locally for a design this node has never stored: adopt
		// the bytes (and the replicated records) from a peer — any replica
		// can coordinate any design.
		d = s.adoptDesignFromPeers(r.Context(), digest)
	}
	if d == nil {
		writeError(w, http.StatusNotFound, "unknown design "+digest)
		return nil
	}
	return d
}

// routeToLeader walks the design's preference order and forwards the
// request to the first live node ahead of this one. It reports whether the
// request was handled (a peer answered, or reading the body failed); false
// means the caller should serve locally — either this node leads, or no
// preferred peer is reachable (every record is replicated here too, so
// serving locally is always safe).
func (s *Server) routeToLeader(w http.ResponseWriter, r *http.Request, digest string) bool {
	cs := s.cluster
	var body []byte
	bodyRead := false
	restore := func() {
		if bodyRead {
			r.Body = io.NopCloser(bytes.NewReader(body))
		}
	}
	for _, node := range cs.ring.Order(digest) {
		if node == cs.cfg.Self {
			restore()
			return false
		}
		br := cs.breakerFor(node)
		if !br.allow() {
			continue
		}
		if !bodyRead {
			data, err := s.readBody(w, r)
			if err != nil {
				var ae *apiError
				errors.As(err, &ae)
				writeError(w, ae.status, ae.msg)
				return true
			}
			body, bodyRead = data, true
		}
		if s.forward(w, r, node, body) {
			br.success()
			return true
		}
		br.failure()
		mForwardFails.Inc()
	}
	restore()
	return false
}

// forward replays the request against node and streams the response back.
// Any HTTP response — including an error status — counts as handled; only
// a transport failure (the node is down) returns false so the caller can
// fail over to the next replica in the preference order.
func (s *Server) forward(w http.ResponseWriter, r *http.Request, node string, body []byte) bool {
	if s.cluster.linkFault(node) != nil {
		return false
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, node+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header = r.Header.Clone()
	req.Header.Set(forwardedHeader, s.cluster.cfg.Self)
	resp, err := s.cluster.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	mForwards.Inc()
	hdr := w.Header()
	for k, vs := range resp.Header {
		hdr[k] = vs
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return true
}

// adoptDesignFromPeers fetches an unknown design's bytes (and its
// replicated registry records) from the first peer that has them, persists
// them locally and registers the design for serving.
func (s *Server) adoptDesignFromPeers(ctx context.Context, digest string) *design {
	if !validDigest(digest) {
		return nil
	}
	cs := s.cluster
	for _, node := range cs.ring.Order(digest) {
		if node == cs.cfg.Self {
			continue
		}
		meta, data, err := cs.fetchDesign(ctx, node, digest)
		if err != nil {
			continue
		}
		if err := s.store.PutDesign(digest, meta, data); err != nil {
			continue
		}
		d := s.registerDesign(digest, meta)
		// Pull the design's issuance records too: a node that never saw the
		// design must not serve an empty registry for acknowledged copies.
		cs.store.Sync(ctx, []string{digest})
		mDesignAdopts.Inc()
		return d
	}
	return nil
}

// registerDesign adds (or returns) the in-memory design entry for digest.
func (s *Server) registerDesign(digest string, meta DesignMeta) *design {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.designs[digest]
	if d == nil {
		d = &design{digest: digest, meta: meta}
		s.designs[digest] = d
		gDesigns.Set(int64(len(s.designs)))
	}
	return d
}

// broadcastDesign pushes a freshly uploaded design's bytes to every peer in
// the background, so routed requests usually find the design already
// present; adoptDesignFromPeers covers the races and failures.
func (s *Server) broadcastDesign(digest string, meta DesignMeta, data []byte) {
	cs := s.cluster
	if cs == nil {
		return
	}
	for _, node := range cs.cfg.Nodes {
		if node == cs.cfg.Self {
			continue
		}
		cs.wg.Add(1)
		go func(node string) {
			defer cs.wg.Done()
			ctx, cancel := context.WithTimeout(s.bgCtx, defaultPeerTimeout)
			defer cancel()
			cs.pushDesign(ctx, node, digest, meta, data)
		}(node)
	}
}

// probeJobPeers answers a /jobs/{id} poll for a job owned by another
// replica: jobs are node-local (they run where the design's leader accepted
// them), so an unknown id is probed across the peers and the first replica
// that knows it answers. It reports whether a response was written.
func (s *Server) probeJobPeers(w http.ResponseWriter, r *http.Request) bool {
	cs := s.cluster
	if cs == nil || r.Header.Get(forwardedHeader) != "" {
		return false
	}
	for _, node := range cs.cfg.Nodes {
		if node == cs.cfg.Self || cs.linkFault(node) != nil {
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, node+r.URL.RequestURI(), nil)
		if err != nil {
			continue
		}
		req.Header.Set(forwardedHeader, cs.cfg.Self)
		resp, err := cs.client.Do(req)
		if err != nil {
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			continue
		}
		mForwards.Inc()
		hdr := w.Header()
		for k, vs := range resp.Header {
			hdr[k] = vs
		}
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
		resp.Body.Close()
		return true
	}
	return false
}

// defaultPeerTimeout bounds one peer-to-peer HTTP exchange.
const defaultPeerTimeout = 5 * time.Second

// replicatePayload is the JSON body of POST /cluster/replicate/{digest}.
type replicatePayload struct {
	// Records are the issuance records to append (deduped by buyer).
	Records []registrystore.Record `json:"records"`
	// Total is the sender's committed record count for the design.
	Total uint64 `json:"total"`
}

// registryFetchResponse is the JSON body of GET /cluster/registry/{digest}
// and of a replicate ack ({total} only).
type registryFetchResponse struct {
	// Records are the design's committed records in append order.
	Records []registrystore.Record `json:"records,omitempty"`
	// Total is this node's committed record count for the design.
	Total uint64 `json:"total"`
}

// handleReplicate implements POST /cluster/replicate/{digest}: durably
// append a peer's records and answer with this node's resulting total (the
// peer compares totals to decide whether to stream a full catch-up).
func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	if !validDigest(digest) {
		writeError(w, http.StatusNotFound, "unknown design "+digest)
		return
	}
	data, err := s.readBody(w, r)
	if err != nil {
		var ae *apiError
		errors.As(err, &ae)
		writeError(w, ae.status, ae.msg)
		return
	}
	var req replicatePayload
	if err := json.Unmarshal(data, &req); err != nil {
		writeError(w, http.StatusBadRequest, "replicate body must be JSON {records, total}")
		return
	}
	total, err := s.cluster.store.ApplyReplica(digest, req.Records)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "applying replica records: "+err.Error())
		return
	}
	mReplApplied.Add(int64(len(req.Records)))
	writeJSON(w, http.StatusOK, registryFetchResponse{Total: total})
}

// handleRegistryFetch implements GET /cluster/registry/{digest}: the full
// committed record list, the serving side of peer catch-up pulls.
func (s *Server) handleRegistryFetch(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	if !validDigest(digest) {
		writeError(w, http.StatusNotFound, "unknown design "+digest)
		return
	}
	writeJSON(w, http.StatusOK, registryFetchResponse{
		Records: s.cluster.store.Records(digest),
		Total:   s.cluster.store.Total(digest),
	})
}

// handleDesignPush implements PUT /cluster/designs/{digest}: a peer
// distributing a freshly uploaded design's raw bytes. The receiver stores
// them verbatim; analysis stays lazy (first use).
func (s *Server) handleDesignPush(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	if !validDigest(digest) {
		writeError(w, http.StatusNotFound, "invalid digest "+digest)
		return
	}
	data, err := s.readBody(w, r)
	if err != nil {
		var ae *apiError
		errors.As(err, &ae)
		writeError(w, ae.status, ae.msg)
		return
	}
	meta := DesignMeta{
		Design: r.Header.Get(designHeader),
		Format: r.Header.Get(formatHeader),
	}
	if meta.Format == "" {
		meta.Format = detectFormat(data)
	}
	if !s.store.HasDesign(digest) {
		if err := s.store.PutDesign(digest, meta, data); err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
	}
	s.registerDesign(digest, meta)
	writeJSON(w, http.StatusOK, map[string]string{"digest": digest})
}

// handleDesignFetch implements GET /cluster/designs/{digest}: the design's
// raw bytes plus its meta in headers — the pull side of design adoption.
func (s *Server) handleDesignFetch(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	d := s.lookupDesign(digest)
	if d == nil {
		writeError(w, http.StatusNotFound, "unknown design "+digest)
		return
	}
	_, data, err := s.store.LoadDesign(digest)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set(designHeader, d.meta.Design)
	w.Header().Set(formatHeader, d.meta.Format)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

// handleClusterStatus implements GET /cluster/status: the node's identity
// and per-design committed record totals — what the cluster smoke test
// compares across replicas to assert registry convergence. ?sync=1 runs an
// anti-entropy pull first — every known design's records are unioned in
// from the live peers before the totals are reported — which is how an
// operator (or the smoke test) forces a straggler to converge after a node
// loss instead of waiting for the next write to that design.
func (s *Server) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	cs := s.cluster
	if r.URL.Query().Get("sync") == "1" {
		digests, err := s.store.Digests()
		if err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		if _, err := cs.store.Sync(r.Context(), digests); err != nil {
			writeError(w, http.StatusInternalServerError, "anti-entropy sync: "+err.Error())
			return
		}
	}
	totals := make(map[string]uint64)
	for _, digest := range cs.store.Digests() {
		totals[digest] = cs.store.Total(digest)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"self":   cs.cfg.Self,
		"nodes":  cs.ring.Nodes(),
		"rf":     cs.cfg.ReplicationFactor,
		"totals": totals,
		// health is the node's self-repair ledger: hinted-handoff queue
		// depth and delivery counts plus WAL scrubber activity. A healthy,
		// fully converged node shows an empty hints_pending map.
		"health": cs.store.Handoff(),
	})
}

// peerTransport is the registrystore.Transport over the cluster HTTP
// endpoints.
type peerTransport struct {
	cs *clusterState
}

// Replicate implements registrystore.Transport.
func (t *peerTransport) Replicate(ctx context.Context, node, digest string, recs []registrystore.Record, total uint64) (uint64, error) {
	body, err := json.Marshal(replicatePayload{Records: recs, Total: total})
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		node+"/cluster/replicate/"+digest, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	var resp registryFetchResponse
	if err := t.do(req, &resp); err != nil {
		return 0, err
	}
	return resp.Total, nil
}

// Fetch implements registrystore.Transport.
func (t *peerTransport) Fetch(ctx context.Context, node, digest string) ([]registrystore.Record, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node+"/cluster/registry/"+digest, nil)
	if err != nil {
		return nil, err
	}
	var resp registryFetchResponse
	if err := t.do(req, &resp); err != nil {
		return nil, err
	}
	return resp.Records, nil
}

// do executes a peer request and decodes its JSON answer.
func (t *peerTransport) do(req *http.Request, out any) error {
	resp, err := t.cs.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("serve: cluster: peer %s: %s", req.URL.Host, strings.TrimSpace(string(msg)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// fetchDesign pulls one design's meta and bytes from a peer.
func (cs *clusterState) fetchDesign(ctx context.Context, node, digest string) (DesignMeta, []byte, error) {
	var meta DesignMeta
	if err := cs.linkFault(node); err != nil {
		return meta, nil, err
	}
	pctx, cancel := context.WithTimeout(ctx, defaultPeerTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, node+"/cluster/designs/"+digest, nil)
	if err != nil {
		return meta, nil, err
	}
	resp, err := cs.client.Do(req)
	if err != nil {
		return meta, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return meta, nil, fmt.Errorf("serve: cluster: peer %s: design %s: status %d", node, digest, resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return meta, nil, err
	}
	meta.Design = resp.Header.Get(designHeader)
	meta.Format = resp.Header.Get(formatHeader)
	if meta.Format == "" {
		meta.Format = detectFormat(data)
	}
	return meta, data, nil
}

// pushDesign delivers one design's bytes to a peer.
func (cs *clusterState) pushDesign(ctx context.Context, node, digest string, meta DesignMeta, data []byte) error {
	if err := cs.linkFault(node); err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		node+"/cluster/designs/"+digest, bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set(designHeader, meta.Design)
	req.Header.Set(formatHeader, meta.Format)
	resp, err := cs.client.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("serve: cluster: peer %s: design push status %d", node, resp.StatusCode)
	}
	return nil
}
