package redteam

import (
	"reflect"
	"testing"
)

// FuzzParseSpec: the campaign-spec reader must never panic; accepted specs
// must validate and round-trip through their canonical rendering.
func FuzzParseSpec(f *testing.F) {
	f.Add("")
	f.Add(DefaultSpec().String())
	f.Add("dip: budget=5000 maxdips=8\nsite: total=9000\n")
	f.Add("coalition: k=2 strategies=intersect+majority\nseed: -3\n")
	f.Add("# comment only\nharden: decoys=0 taps=2 seed=-1\n")
	f.Add("dip: budget=99999999999999999999\n")
	f.Add("seed:")
	f.Fuzz(func(t *testing.T, src string) {
		sp, err := ParseSpec(src)
		if err != nil {
			return
		}
		if err := sp.Validate(); err != nil {
			t.Fatalf("accepted spec invalid: %v\n%+v", err, sp)
		}
		back, err := ParseSpec(sp.String())
		if err != nil {
			t.Fatalf("own output rejected: %v\n%s", err, sp.String())
		}
		if !reflect.DeepEqual(sp, back) {
			t.Fatalf("round trip changed the spec:\ngot  %+v\nfrom %+v", back, sp)
		}
	})
}
