package redteam

import (
	"testing"

	"repro/internal/attack"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/sim"
)

// coalitionFixture fingerprints three colluders plus one innocent buyer on
// c432. All colluders share the bit at location 0; each drops one private
// bit, so every pairwise diff is non-empty.
func coalitionFixture(t *testing.T) (*core.Analysis, *attack.Tracer, []*circuit.Circuit) {
	t.Helper()
	a := testAnalysis(t, "c432")
	n := a.BitCapacity()
	if n < 4 {
		t.Skipf("c432 capacity %d too small", n)
	}
	mk := func(drop int) []bool {
		bits := make([]bool, n)
		for i := 0; i < 4; i++ {
			bits[i] = i != drop
		}
		return bits
	}
	tr := attack.NewTracer(a)
	var copies []*circuit.Circuit
	for i, name := range []string{"colluder1", "colluder2", "colluder3"} {
		asg := mustAssign(t, a, mk(i+1))
		tr.Register(name, asg)
		copies = append(copies, mustEmbed(t, a, asg))
	}
	// The innocent buyer carries none of the coalition's bits.
	innocent := make([]bool, n)
	if n > 4 {
		innocent[4] = true
	}
	tr.Register("innocent", mustAssign(t, a, innocent))
	return a, tr, copies
}

// TestCoalitionFewestPins: the paper's adversary. Every surviving
// modification is shared by the whole coalition, so tracing implicates all
// three colluders and never the innocent buyer.
func TestCoalitionFewestPins(t *testing.T) {
	a, tr, copies := coalitionFixture(t)
	res, err := Coalition(copies, StrategyFewestPins)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DetectedGates) == 0 {
		t.Fatal("coalition detected nothing")
	}
	rep, err := tr.Trace(res.Forged, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FullRemoval {
		t.Fatal("coalition shares location 0's bit; full removal is impossible")
	}
	got := map[string]bool{}
	for _, n := range rep.Accused {
		got[n] = true
	}
	for _, want := range []string{"colluder1", "colluder2", "colluder3"} {
		if !got[want] {
			t.Errorf("%s evaded tracing (accused: %v)", want, rep.Accused)
		}
	}
	if got["innocent"] {
		t.Errorf("innocent buyer accused (accused: %v)", rep.Accused)
	}
	_ = a
}

// TestCoalitionMajority: majority voting keeps any modification two of the
// three colluders carry, so the forged copy is a superset of every
// colluder's fingerprint — each colluder matches 3 of its 4 surviving bits
// while the innocent buyer matches none. A 0.7 threshold implicates exactly
// the coalition.
func TestCoalitionMajority(t *testing.T) {
	_, tr, copies := coalitionFixture(t)
	res, err := Coalition(copies, StrategyMajority)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tr.Trace(res.Forged, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FullRemoval {
		t.Fatal("majority merge cannot remove a bit shared by the whole coalition")
	}
	got := map[string]bool{}
	for _, n := range rep.Accused {
		got[n] = true
	}
	for _, want := range []string{"colluder1", "colluder2", "colluder3"} {
		if !got[want] {
			t.Errorf("%s evaded tracing (accused: %v)", want, rep.Accused)
		}
	}
	if got["innocent"] {
		t.Errorf("innocent buyer accused (accused: %v)", rep.Accused)
	}
}

// TestCoalitionIntersectSharedBit: pin intersection strips every detected
// site down to base form, but bits the whole coalition shares are never
// detected — the colluders all remain implicated.
func TestCoalitionIntersectSharedBit(t *testing.T) {
	a, tr, copies := coalitionFixture(t)
	res, err := Coalition(copies, StrategyIntersect)
	if err != nil {
		t.Fatal(err)
	}
	mm, err := sim.Compare(a.Circuit, res.Forged, sim.Random(len(a.Circuit.PIs), 32, 7))
	if err != nil {
		t.Fatal(err)
	}
	if mm != nil {
		t.Fatalf("intersect merge broke the function: %v", mm)
	}
	rep, err := tr.Trace(res.Forged, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FullRemoval {
		t.Fatal("shared bit at location 0 must survive an intersect merge")
	}
	got := map[string]bool{}
	for _, n := range rep.Accused {
		got[n] = true
	}
	for _, want := range []string{"colluder1", "colluder2", "colluder3"} {
		if !got[want] {
			t.Errorf("%s evaded tracing (accused: %v)", want, rep.Accused)
		}
	}
}

// TestCoalitionIntersectFullRemoval: on a complementary pair — fingerprints
// that disagree at every embedded location — intersection reconstructs the
// base form everywhere. The designer's report must classify the result as
// a full removal, not accuse anyone, and stay functionally correct.
func TestCoalitionIntersectFullRemoval(t *testing.T) {
	a := testAnalysis(t, "c432")
	bitsA, bitsB := complementBits(a, a.BitCapacity())
	asgA := mustAssign(t, a, bitsA)
	asgB := mustAssign(t, a, bitsB)
	tr := attack.NewTracer(a)
	tr.Register("buyerA", asgA)
	tr.Register("buyerB", asgB)
	res, err := Coalition([]*circuit.Circuit{mustEmbed(t, a, asgA), mustEmbed(t, a, asgB)}, StrategyIntersect)
	if err != nil {
		t.Fatal(err)
	}
	mm, err := sim.Compare(a.Circuit, res.Forged, sim.Random(len(a.Circuit.PIs), 32, 9))
	if err != nil {
		t.Fatal(err)
	}
	if mm != nil {
		t.Fatalf("intersect merge broke the function: %v", mm)
	}
	rep, err := tr.Trace(res.Forged, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.FullRemoval {
		t.Fatalf("complementary intersect should fully remove the fingerprint (accused: %v)", rep.Accused)
	}
	if len(rep.Accused) != 0 {
		t.Fatalf("full removal must not accuse anyone, got %v", rep.Accused)
	}
}

// TestCoalitionSingleCopy: every strategy degrades to a clean clone at k=1.
func TestCoalitionSingleCopy(t *testing.T) {
	a := testAnalysis(t, "c432")
	bitsA, _ := complementBits(a, 4)
	asgA := mustAssign(t, a, bitsA)
	cp := mustEmbed(t, a, asgA)
	tr := attack.NewTracer(a)
	tr.Register("buyerA", asgA)
	for _, st := range Strategies() {
		res, err := Coalition([]*circuit.Circuit{cp}, st)
		if err != nil {
			t.Fatalf("%v: %v", st, err)
		}
		if len(res.DetectedGates) != 0 {
			t.Fatalf("%v: single copy detected %v", st, res.DetectedGates)
		}
		names, err := tr.TraceExact(res.Forged)
		if err != nil {
			t.Fatal(err)
		}
		if len(names) != 1 || names[0] != "buyerA" {
			t.Fatalf("%v: k=1 merge should still trace to buyerA, got %v", st, names)
		}
	}
}
