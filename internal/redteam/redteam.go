// Package redteam attacks the fingerprinting scheme from the designer's own
// side of the table and quantifies how much of an embedded fingerprint a
// realistic adversary recovers.
//
// The attacker model extends internal/attack's collusion adversary with a
// SAT engine. Given k ≥ 1 differently fingerprinted copies of one design,
// the attack runs three phases:
//
//  1. Localization. Gates present in every copy whose canonical signature
//     (attack.Signature) differs across copies are candidate fingerprint
//     sites; the hypothesized unfingerprinted "base form" of each site is
//     its fewest-pin configuration, because the paper's modifications only
//     ever add pins.
//  2. Distinguishing-input (DIP) loop. The classic SAT attack on logic
//     locking, transplanted to fingerprinting: one key input per candidate
//     site switches that site between its fingerprinted and base forms, two
//     key-differentiated copies of the keyed circuit are joined by an
//     output-XOR miter plus a key-inequality constraint, and every SAT
//     model is a distinguishing input that the attacker replays against a
//     working copy to prune key space. Because the paper's ODC
//     modifications are function-preserving for every key value, the very
//     first call is UNSAT — the loop terminates with zero DIPs and the
//     report carries an IOIndistinguishable certificate, which is exactly
//     the paper's security claim stated as a SAT proof.
//  3. Strip proofs. I/O behaviour reveals nothing, so the attacker falls
//     back on structure: site by site it rewires its copy to the base form
//     and asks the equivalence checker (internal/cec) to prove the rewrite
//     safe, charging every SAT conflict against a finite budget. A proof
//     that completes strips the site from the forged copy; an exhausted
//     budget leaves the site in place, since shipping an unproved rewrite
//     risks a broken product.
//
// The Harden knob (core.InsertDecoys) is the designer's counter: decoy
// sites whose strip proofs are CDCL-hostile parity instances drain the
// phase-3 budget before the true sites are resolved. Evaluate reduces an
// attack to the metric that matters — fingerprint bits recovered versus
// fingerprint bits embedded.
package redteam

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/attack"
	"repro/internal/cec"
	"repro/internal/circuit"
	"repro/internal/core"
)

// AttackOptions tunes the three attack phases.
type AttackOptions struct {
	// DIPBudget bounds total SAT conflicts in the DIP loop (≤0: unlimited).
	DIPBudget int64
	// MaxDIPs caps DIP iterations (0: default 64; <0: skip the DIP phase).
	MaxDIPs int
	// SiteBudget bounds SAT conflicts per strip proof (≤0: unlimited).
	SiteBudget int64
	// TotalBudget bounds SAT conflicts across all strip proofs (≤0:
	// unlimited). This is the attacker's overall computing allowance; decoy
	// hardening works by draining it.
	TotalBudget int64
	// SimWords sizes the equivalence checker's random-simulation pre-pass
	// (0: default 4 — strips of correct hypotheses are never refuted by
	// simulation, so a large pre-pass is wasted work).
	SimWords int
	// Seed drives the attacker's site-processing order and the checker's
	// simulation patterns.
	Seed int64
}

func (o AttackOptions) withDefaults() AttackOptions {
	if o.MaxDIPs == 0 {
		o.MaxDIPs = 64
	}
	if o.SimWords == 0 {
		o.SimWords = 4
	}
	return o
}

// SiteStatus classifies the outcome of one candidate site's strip proof.
type SiteStatus uint8

const (
	// SiteBase: the attacked copy already carries the hypothesized base
	// form; there is nothing to strip and no proof to pay for.
	SiteBase SiteStatus = iota
	// SiteStripped: the strip proof completed and the forged copy adopts
	// the base form.
	SiteStripped
	// SiteKept: the proof refuted the hypothesis — rewiring would change
	// the function — so the site stays as issued.
	SiteKept
	// SiteUnresolved: the conflict budget ran out before a verdict; the
	// attacker cannot safely strip the site.
	SiteUnresolved
)

// String names the status for reports.
func (s SiteStatus) String() string {
	switch s {
	case SiteBase:
		return "base"
	case SiteStripped:
		return "stripped"
	case SiteKept:
		return "kept"
	case SiteUnresolved:
		return "unresolved"
	}
	return fmt.Sprintf("SiteStatus(%d)", uint8(s))
}

// SiteResult reports one candidate site's attack outcome.
type SiteResult struct {
	// Gate is the site's gate name (shared across all copies).
	Gate string
	// Status is the strip-proof outcome.
	Status SiteStatus
	// Conflicts is the SAT effort this site's proof consumed.
	Conflicts int64
	// ExtraPins counts input pins the attacked copy carries beyond the
	// hypothesized base form.
	ExtraPins int
}

// AttackReport is the full outcome of one red-team attack.
type AttackReport struct {
	// Candidates lists the localized candidate sites in the order the
	// attacker processed them.
	Candidates []string
	// KeyBits is the number of key inputs in the DIP miter — candidate
	// sites where the attacked copy differs from its base form.
	KeyBits int
	// DIPs counts distinguishing inputs found. Zero with
	// IOIndistinguishable set is the expected outcome against ODC
	// fingerprints: no input/output experiment separates configurations.
	DIPs int
	// DIPConflicts is the SAT effort the DIP loop consumed.
	DIPConflicts int64
	// IOIndistinguishable is set when the DIP loop proved UNSAT: no input
	// distinguishes any two key settings, certifying the scheme's
	// function-preservation claim on this instance.
	IOIndistinguishable bool
	// DIPBudgetExhausted is set when the loop stopped on budget or the
	// MaxDIPs cap instead of a verdict.
	DIPBudgetExhausted bool
	// Sites holds per-site strip results, in processing order.
	Sites []SiteResult
	// StripConflicts is the SAT effort of all strip proofs combined.
	StripConflicts int64
	// BudgetExhausted is set when TotalBudget ran dry with sites pending.
	BudgetExhausted bool
	// Forged is the attacker's final merged copy with every stripped site
	// rewired to base form (dangling logic swept).
	Forged *circuit.Circuit
	// Elapsed is the wall-clock duration of the whole attack.
	Elapsed time.Duration
}

// site is one localized candidate during the attack.
type site struct {
	name string
	ids  []circuit.NodeID // per copy, parallel to the copies slice
	base int              // copy index holding the fewest-pin (base) form
}

// Attack runs the full red-team pipeline against the attacker's own copies.
// copies[0] is the copy being cleaned; the rest are coalition references.
// A single copy is legal and degenerates to zero candidates — structure
// alone reveals nothing, matching internal/attack's k=1 semantics.
func Attack(copies []*circuit.Circuit, opts AttackOptions) (*AttackReport, error) {
	start := time.Now()
	opts = opts.withDefaults()
	if len(copies) == 0 {
		return nil, fmt.Errorf("redteam: attack needs at least 1 copy, got 0")
	}
	sites, shared, err := localize(copies)
	if err != nil {
		return nil, err
	}
	// Process in a seed-driven order: the attacker has no way to tell true
	// sites from decoys up front, so its budget meets them interleaved.
	sort.Slice(sites, func(i, j int) bool { return sites[i].name < sites[j].name })
	rng := rand.New(rand.NewSource(opts.Seed))
	rng.Shuffle(len(sites), func(i, j int) { sites[i], sites[j] = sites[j], sites[i] })

	rep := &AttackReport{}
	for _, st := range sites {
		rep.Candidates = append(rep.Candidates, st.name)
	}
	if opts.MaxDIPs > 0 {
		if err := runDIP(copies, sites, opts, rep); err != nil {
			return nil, err
		}
	}
	if err := runStrips(copies, sites, shared, opts, rep); err != nil {
		return nil, err
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// localize diffs the copies gate by gate and returns the candidate sites
// plus the set of gate names shared by every copy (the common layout, used
// to resolve signals during transplants).
func localize(copies []*circuit.Circuit) ([]site, map[string]bool, error) {
	base := copies[0]
	shared := make(map[string]bool)
	var sites []site
	for i := range base.Nodes {
		id0 := circuit.NodeID(i)
		name := base.Nodes[i].Name
		ids := make([]circuit.NodeID, len(copies))
		ids[0] = id0
		everywhere := true
		for c := 1; c < len(copies); c++ {
			id, ok := copies[c].Lookup(name)
			if !ok {
				// Private helper logic (fingerprint inverters, decoy parity
				// trees); its consumers' signatures expose the difference.
				everywhere = false
				break
			}
			ids[c] = id
		}
		if !everywhere {
			continue
		}
		shared[name] = true
		if base.Nodes[i].IsPI {
			continue
		}
		sig0 := attack.Signature(base, id0)
		differs := false
		for c := 1; c < len(copies); c++ {
			if attack.Signature(copies[c], ids[c]) != sig0 {
				differs = true
				break
			}
		}
		if !differs {
			continue
		}
		best, bestPins := 0, len(copies[0].Nodes[ids[0]].Fanin)
		for c := 1; c < len(copies); c++ {
			if n := len(copies[c].Nodes[ids[c]].Fanin); n < bestPins {
				best, bestPins = c, n
			}
		}
		sites = append(sites, site{name: name, ids: ids, base: best})
	}
	return sites, shared, nil
}

// runStrips executes phase 3: per-site budgeted strip proofs building the
// forged copy incrementally.
func runStrips(copies []*circuit.Circuit, sites []site, shared map[string]bool, opts AttackOptions, rep *AttackReport) error {
	ctx := context.Background()
	forged := copies[0].Clone()
	remaining := opts.TotalBudget
	for _, st := range sites {
		res := SiteResult{Gate: st.name}
		from := copies[st.base]
		res.ExtraPins = len(copies[0].Nodes[st.ids[0]].Fanin) - len(from.Nodes[st.ids[st.base]].Fanin)
		if attack.Signature(copies[0], st.ids[0]) == attack.Signature(from, st.ids[st.base]) {
			// The attacked copy already carries the fewest-pin form; other
			// copies hold the modifications here.
			rep.Sites = append(rep.Sites, res)
			continue
		}
		if opts.TotalBudget > 0 && remaining <= 0 {
			res.Status = SiteUnresolved
			rep.BudgetExhausted = true
			rep.Sites = append(rep.Sites, res)
			continue
		}
		trial := forged.Clone()
		if err := transplant(trial, from, st.ids[st.base], trial.MustLookup(st.name), shared); err != nil {
			return err
		}
		budget := opts.SiteBudget
		if opts.TotalBudget > 0 && (budget <= 0 || remaining < budget) {
			budget = remaining
		}
		v, err := cec.CheckCtx(ctx, trial, forged, cec.Options{
			SimWords:     opts.SimWords,
			Seed:         opts.Seed,
			MaxConflicts: budget,
		})
		res.Conflicts = v.Conflicts
		rep.StripConflicts += v.Conflicts
		if opts.TotalBudget > 0 {
			remaining -= v.Conflicts
		}
		switch {
		case err == nil && v.Equivalent:
			res.Status = SiteStripped
			forged = trial
		case err == nil:
			res.Status = SiteKept
		case errors.Is(err, cec.ErrBudgetExhausted):
			res.Status = SiteUnresolved
			if opts.TotalBudget > 0 && remaining <= 0 {
				rep.BudgetExhausted = true
			}
		default:
			return fmt.Errorf("redteam: strip proof for %q: %w", st.name, err)
		}
		rep.Sites = append(rep.Sites, res)
	}
	swept, _ := forged.Sweep()
	if err := swept.Validate(); err != nil {
		return fmt.Errorf("redteam: forged copy invalid: %w", err)
	}
	rep.Forged = swept
	return nil
}

// transplant rewires gate dstID in dst to match srcID's form in src. Fanin
// signals in the shared layout are resolved by name; src-private logic
// (fingerprint helper inverters, decoy trees) is recreated recursively —
// name lookup alone would be unsound there, since FreshName can mint the
// same private name for different logic in different copies.
func transplant(dst, src *circuit.Circuit, srcID, dstID circuit.NodeID, shared map[string]bool) error {
	g := &src.Nodes[srcID]
	want := make([]circuit.NodeID, len(g.Fanin))
	for i, f := range g.Fanin {
		id, err := resolveSignal(dst, src, f, shared)
		if err != nil {
			return fmt.Errorf("redteam: forging %q: %w", g.Name, err)
		}
		want[i] = id
	}
	return dst.RewireGate(dstID, g.Kind, want)
}

// resolveSignal maps a src node to a dst node, recreating src-private logic.
func resolveSignal(dst, src *circuit.Circuit, f circuit.NodeID, shared map[string]bool) (circuit.NodeID, error) {
	fn := &src.Nodes[f]
	if fn.IsPI || shared[fn.Name] {
		id, ok := dst.Lookup(fn.Name)
		if !ok {
			return circuit.None, fmt.Errorf("shared signal %q missing", fn.Name)
		}
		return id, nil
	}
	in := make([]circuit.NodeID, len(fn.Fanin))
	for i, ff := range fn.Fanin {
		id, err := resolveSignal(dst, src, ff, shared)
		if err != nil {
			return circuit.None, err
		}
		in[i] = id
	}
	return dst.AddGate(dst.FreshName(fn.Name), fn.Kind, in...)
}

// Evaluation reduces an attack report to the fingerprint-recovery metric.
type Evaluation struct {
	// FingerprintBits is the number of modifications embedded in the
	// attacked copy (the fingerprint size in bits).
	FingerprintBits int
	// TrueSites are the gate names carrying those modifications.
	TrueSites []string
	// BitsRecovered counts true sites the attacker stripped — fingerprint
	// bits it located AND safely removed.
	BitsRecovered int
	// FalseStrips are stripped sites that carry no fingerprint bit in the
	// attacked copy (decoys, or sites modified only in other copies).
	FalseStrips []string
	// Unresolved counts sites abandoned on budget.
	Unresolved int
	// Subset is true when every stripped site is a true site — the
	// soundness property of the unhardened attack.
	Subset bool
}

// Evaluate scores an attack report against the ground-truth assignment
// embedded in the attacked copy (copies[0] of the Attack call). Only the
// designer can compute this; the attacker sees SiteResults alone.
func Evaluate(a *core.Analysis, asg core.Assignment, rep *AttackReport) *Evaluation {
	truth := make(map[string]bool)
	ev := &Evaluation{}
	for i := range a.Locations {
		for j := range a.Locations[i].Targets {
			if asg[i][j] >= 0 {
				name := a.Circuit.Nodes[a.Locations[i].Targets[j].Gate].Name
				if !truth[name] {
					truth[name] = true
					ev.TrueSites = append(ev.TrueSites, name)
				}
			}
		}
	}
	sort.Strings(ev.TrueSites)
	ev.FingerprintBits = len(ev.TrueSites)
	ev.Subset = true
	for _, s := range rep.Sites {
		switch s.Status {
		case SiteStripped:
			if truth[s.Gate] {
				ev.BitsRecovered++
			} else {
				ev.FalseStrips = append(ev.FalseStrips, s.Gate)
				ev.Subset = false
			}
		case SiteUnresolved:
			ev.Unresolved++
		}
	}
	sort.Strings(ev.FalseStrips)
	return ev
}
