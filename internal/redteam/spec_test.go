package redteam

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseSpecDefaults(t *testing.T) {
	sp, err := ParseSpec("")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sp, DefaultSpec()) {
		t.Fatalf("empty spec != defaults:\n%+v\n%+v", sp, DefaultSpec())
	}
}

func TestParseSpecOverrides(t *testing.T) {
	src := `
# a campaign
dip: budget=5000 maxdips=8
site: budget=100 total=9000 simwords=2
coalition: k=2 strategies=intersect
harden: decoys=3 taps=4 seed=99
seed: 42
`
	sp, err := ParseSpec(src)
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{
		DIPBudget: 5000, MaxDIPs: 8,
		SiteBudget: 100, TotalBudget: 9000, SimWords: 2,
		Seed: 42, K: 2,
		Strategies: []Strategy{StrategyIntersect},
		Decoys:     3, Taps: 4, HardenSeed: 99,
	}
	if !reflect.DeepEqual(sp, want) {
		t.Fatalf("parsed\n%+v\nwant\n%+v", sp, want)
	}
}

func TestSpecRoundTrip(t *testing.T) {
	sp, err := ParseSpec("coalition: k=5 strategies=majority+fewestpins\nharden: taps=3")
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSpec(sp.String())
	if err != nil {
		t.Fatalf("own output rejected: %v\n%s", err, sp.String())
	}
	if !reflect.DeepEqual(sp, back) {
		t.Fatalf("round trip changed the spec:\n%+v\n%+v", sp, back)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, src := range []string{
		"dip budget=5",                   // missing colon
		"dip: budget",                    // missing value
		"dip: budget=x",                  // not a number
		"warp: speed=9",                  // unknown section
		"dip: speed=9",                   // unknown key
		"coalition: k=0",                 // coalition too small
		"coalition: strategies=steal",    // unknown strategy
		"coalition: strategies=",         // empty strategy list
		"harden: taps=1",                 // degenerate parity tree
		"site: total=-5",                 // negative budget
		"seed: many",                     // malformed seed
		"dip: maxdips=-1",                // negative cap
		strings.Repeat("k", 10) + ":= 1", // junk
	} {
		if _, err := ParseSpec(src); err == nil {
			t.Errorf("ParseSpec(%q) accepted", src)
		}
	}
}
