package redteam

import (
	"fmt"

	"repro/internal/cec"
	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/sat"
	"repro/internal/sim"
)

// This file implements phase 2, the distinguishing-input (DIP) loop — the
// SAT attack of Subramanyan et al. retargeted from logic locking to ODC
// fingerprinting. The attacker turns its own copy into a keyed circuit: one
// fresh key input per candidate site, wired so the key chooses between the
// site's issued form (key=1) and its hypothesized base form (key=0):
//
//	AND/NAND hosts: extra pin p becomes OR(p, ¬k)  (k=0 forces the AND
//	                identity 1, erasing the pin)
//	OR/NOR hosts:   extra pin p becomes AND(p, k)  (k=0 forces the OR
//	                identity 0)
//
// This covers every catalogue entry: AddLiteral and Reroute add pins to a
// controlling-value gate, and ConvertSingle's BUF/INV→2-input conversion is
// undone by neutralizing the added pin (NAND(x, 1) ≡ INV(x), AND(x, 1) ≡
// BUF(x)). Two copies of the keyed circuit over shared primary inputs but
// independent keys, an output-XOR miter, and a key-inequality constraint
// form the attack formula; each SAT model is an input on which two key
// hypotheses disagree, and replaying it on a working copy (the attacker
// owns one) rules out at least one of them. UNSAT means no input/output
// experiment can ever separate the remaining hypotheses.
//
// Against this scheme every key value yields the same function — the paper
// guarantees each modification individually preserves I/O behaviour — so
// the first solve is UNSAT and the loop's real product is the certificate:
// fingerprint bits are unrecoverable from I/O access, with or without
// hardening. The loop is still written in full generality (models are
// extracted, the oracle is consulted, both key sides are constrained)
// so that any future catalogue entry that breaks function preservation
// surfaces here as a nonzero DIP count instead of silent miscounting.

// keyed is the attacker's key-switched copy.
type keyed struct {
	c    *circuit.Circuit
	keys []string // key PI names, one per gated site
}

// buildKeyed clones copy0 and installs one key input per site where copy0
// differs from its base form. Sites whose issued form is not a
// controlling-value gate (nothing in the catalogue produces one) are
// skipped rather than mis-encoded.
func buildKeyed(copies []*circuit.Circuit, sites []site) (*keyed, error) {
	kc := &keyed{c: copies[0].Clone()}
	for _, st := range sites {
		from := copies[st.base]
		g := kc.c.MustLookup(st.name)
		nd := &kc.c.Nodes[g]
		id, hasID := nd.Kind.IdentityValue()
		if !hasID {
			continue
		}
		extras := extraPins(copies[0], st.ids[0], from, st.ids[st.base])
		if len(extras) == 0 {
			continue
		}
		key, err := kc.c.AddPI(kc.c.FreshName("__key"))
		if err != nil {
			return nil, err
		}
		for _, pin := range extras {
			p := kc.c.Nodes[g].Fanin[pin]
			var gate circuit.NodeID
			if id {
				// AND-family: neutralize toward 1 when the key is off.
				kn, err := kc.c.AddGate(kc.c.FreshName("__keyn"), logic.Inv, key)
				if err != nil {
					return nil, err
				}
				gate, err = kc.c.AddGate(kc.c.FreshName("__keyg"), logic.Or, p, kn)
				if err != nil {
					return nil, err
				}
			} else {
				// OR-family: neutralize toward 0 when the key is off.
				var err error
				gate, err = kc.c.AddGate(kc.c.FreshName("__keyg"), logic.And, p, key)
				if err != nil {
					return nil, err
				}
			}
			if err := kc.c.ReplaceFanin(g, pin, gate); err != nil {
				return nil, err
			}
		}
		kc.keys = append(kc.keys, kc.c.Nodes[key].Name)
	}
	if err := kc.c.Validate(); err != nil {
		return nil, fmt.Errorf("redteam: keyed circuit invalid: %w", err)
	}
	return kc, nil
}

// extraPins returns the pin indices of gate id0 in c0 whose fanin has no
// same-named counterpart on the base-form gate — the pins the key must be
// able to erase. Matching is by signal NAME, not by the inverter-transparent
// signature used for detection: modifications never rename or remove a pin,
// so a base pin always matches by name, while a signature could spuriously
// flag a base pin as extra when its driver was itself modified
// (ConvertSingle turns an INV fanin's descriptor from "!x" into its own
// name). Private helper inverters carrying a negated trigger literal have
// per-copy fresh names, so they register as extra — which they are.
func extraPins(c0 *circuit.Circuit, id0 circuit.NodeID, cb *circuit.Circuit, idb circuit.NodeID) []int {
	have := make(map[string]int)
	for _, f := range cb.Nodes[idb].Fanin {
		have[cb.Nodes[f].Name]++
	}
	var extras []int
	for i, f := range c0.Nodes[id0].Fanin {
		n := c0.Nodes[f].Name
		if have[n] > 0 {
			have[n]--
			continue
		}
		extras = append(extras, i)
	}
	return extras
}

// runDIP executes the DIP loop and records its outcome in rep.
func runDIP(copies []*circuit.Circuit, sites []site, opts AttackOptions, rep *AttackReport) error {
	kc, err := buildKeyed(copies, sites)
	if err != nil {
		return err
	}
	rep.KeyBits = len(kc.keys)
	if rep.KeyBits == 0 {
		return nil // nothing the key can switch; no hypothesis space to prune
	}
	oracle := copies[0]
	s := sat.New()
	sharedPI := make(map[string]int, len(oracle.PIs))
	for _, pi := range oracle.PIs {
		sharedPI[oracle.Nodes[pi].Name] = s.NewVar()
	}
	keyVars := func() map[string]int {
		m := make(map[string]int, len(kc.keys))
		for _, k := range kc.keys {
			m[k] = s.NewVar()
		}
		return m
	}
	keyA, keyB := keyVars(), keyVars()
	merge := func(keys map[string]int) map[string]int {
		m := make(map[string]int, len(sharedPI)+len(keys))
		for k, v := range sharedPI {
			m[k] = v
		}
		for k, v := range keys {
			m[k] = v
		}
		return m
	}
	poA, err := cec.Encode(s, kc.c, merge(keyA))
	if err != nil {
		return err
	}
	poB, err := cec.Encode(s, kc.c, merge(keyB))
	if err != nil {
		return err
	}
	// Miter: some output differs under the two key hypotheses...
	diff := make([]int, len(poA))
	for i := range poA {
		diff[i] = s.NewVar()
		if err := xor2(s, diff[i], poA[i], poB[i]); err != nil {
			return err
		}
	}
	if err := s.AddClause(diff...); err != nil {
		return err
	}
	// ...and the hypotheses themselves differ.
	kdiff := make([]int, len(kc.keys))
	for i, k := range kc.keys {
		kdiff[i] = s.NewVar()
		if err := xor2(s, kdiff[i], keyA[k], keyB[k]); err != nil {
			return err
		}
	}
	if err := s.AddClause(kdiff...); err != nil {
		return err
	}
	if opts.DIPBudget > 0 {
		s.MaxConflicts = opts.DIPBudget // cumulative across iterations
	}
	for {
		st := s.Solve()
		rep.DIPConflicts = s.Conflicts()
		switch st {
		case sat.Unsat:
			rep.IOIndistinguishable = true
			return nil
		case sat.Unknown:
			rep.DIPBudgetExhausted = true
			return nil
		}
		// A model is a DIP: extract it, ask the oracle, and pin both key
		// sides to the oracle's answer on that input.
		x := make([]bool, len(oracle.PIs))
		for i, pi := range oracle.PIs {
			x[i] = s.Value(sharedPI[oracle.Nodes[pi].Name])
		}
		o, err := sim.EvalOne(oracle, x)
		if err != nil {
			return err
		}
		rep.DIPs++
		if rep.DIPs >= opts.MaxDIPs {
			rep.DIPBudgetExhausted = true
			return nil
		}
		s.BacktrackAll()
		for _, keys := range []map[string]int{keyA, keyB} {
			fixed := make(map[string]int, len(sharedPI)+len(keys))
			for i, pi := range oracle.PIs {
				v := s.NewVar()
				lit := v
				if !x[i] {
					lit = -v
				}
				if err := s.AddClause(lit); err != nil {
					return err
				}
				fixed[oracle.Nodes[pi].Name] = v
			}
			for k, v := range keys {
				fixed[k] = v
			}
			po, err := cec.Encode(s, kc.c, fixed)
			if err != nil {
				return err
			}
			for i := range po {
				lit := po[i]
				if !o[i] {
					lit = -po[i]
				}
				if err := s.AddClause(lit); err != nil {
					return err
				}
			}
		}
	}
}

// xor2 adds the Tseitin clauses for t = a ⊕ b.
func xor2(s *sat.Solver, t, a, b int) error {
	for _, cl := range [][]int{{-t, a, b}, {-t, -a, -b}, {t, -a, b}, {t, a, -b}} {
		if err := s.AddClause(cl...); err != nil {
			return err
		}
	}
	return nil
}
