package redteam

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
)

// Spec is a complete red-team campaign configuration, the text format
// consumed by cmd/attackbench. The format is line-oriented: `#` starts a
// comment, blank lines are skipped, and every other line is a section
// followed by space-separated key=value pairs:
//
//	dip: budget=200000 maxdips=64
//	site: budget=0 total=0 simwords=4
//	coalition: k=3 strategies=fewestpins+majority+intersect
//	harden: decoys=6 taps=16 seed=7
//	seed: 1
//
// Omitted sections and keys keep their DefaultSpec values; repeated keys
// take the last value. String renders the canonical form, and
// ParseSpec(s.String()) round-trips every valid Spec.
type Spec struct {
	// DIPBudget bounds the DIP loop's SAT conflicts (0: unlimited).
	DIPBudget int64
	// MaxDIPs caps DIP iterations.
	MaxDIPs int
	// SiteBudget bounds each strip proof's SAT conflicts (0: unlimited).
	SiteBudget int64
	// TotalBudget bounds all strip proofs combined (0: unlimited; the
	// benchmark derives a budget from the unhardened baseline when 0).
	TotalBudget int64
	// SimWords sizes the equivalence checker's simulation pre-pass.
	SimWords int
	// Seed drives the attacker's processing order.
	Seed int64
	// K is the coalition size.
	K int
	// Strategies lists the coalition merge strategies to run.
	Strategies []Strategy
	// Decoys and Taps configure hardening (core.HardenOptions).
	Decoys int
	// Taps is the per-decoy parity-tree width.
	Taps int
	// HardenSeed seeds decoy placement; the benchmark offsets it per buyer.
	HardenSeed int64
}

// DefaultSpec is the configuration cmd/attackbench runs with no -spec flag.
func DefaultSpec() Spec {
	return Spec{
		DIPBudget:  200000,
		MaxDIPs:    64,
		SimWords:   4,
		Seed:       1,
		K:          3,
		Strategies: []Strategy{StrategyFewestPins, StrategyMajority, StrategyIntersect},
		Decoys:     6,
		Taps:       16,
		HardenSeed: 7,
	}
}

// AttackOptions converts the spec to per-attack options.
func (sp Spec) AttackOptions() AttackOptions {
	return AttackOptions{
		DIPBudget:   sp.DIPBudget,
		MaxDIPs:     sp.MaxDIPs,
		SiteBudget:  sp.SiteBudget,
		TotalBudget: sp.TotalBudget,
		SimWords:    sp.SimWords,
		Seed:        sp.Seed,
	}
}

// HardenOptions converts the spec to embedding-side hardening options.
func (sp Spec) HardenOptions() core.HardenOptions {
	return core.HardenOptions{Decoys: sp.Decoys, Taps: sp.Taps, Seed: sp.HardenSeed}
}

// String renders the canonical spec text accepted by ParseSpec.
func (sp Spec) String() string {
	names := make([]string, len(sp.Strategies))
	for i, st := range sp.Strategies {
		names[i] = st.String()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "dip: budget=%d maxdips=%d\n", sp.DIPBudget, sp.MaxDIPs)
	fmt.Fprintf(&b, "site: budget=%d total=%d simwords=%d\n", sp.SiteBudget, sp.TotalBudget, sp.SimWords)
	fmt.Fprintf(&b, "coalition: k=%d strategies=%s\n", sp.K, strings.Join(names, "+"))
	fmt.Fprintf(&b, "harden: decoys=%d taps=%d seed=%d\n", sp.Decoys, sp.Taps, sp.HardenSeed)
	fmt.Fprintf(&b, "seed: %d\n", sp.Seed)
	return b.String()
}

// Validate bounds-checks the spec.
func (sp Spec) Validate() error {
	switch {
	case sp.DIPBudget < 0 || sp.SiteBudget < 0 || sp.TotalBudget < 0:
		return fmt.Errorf("redteam: spec: budgets must be ≥ 0")
	case sp.MaxDIPs < 0:
		return fmt.Errorf("redteam: spec: maxdips must be ≥ 0")
	case sp.SimWords < 0:
		return fmt.Errorf("redteam: spec: simwords must be ≥ 0")
	case sp.K < 1:
		return fmt.Errorf("redteam: spec: coalition size k=%d must be ≥ 1", sp.K)
	case len(sp.Strategies) == 0:
		return fmt.Errorf("redteam: spec: at least one coalition strategy required")
	case sp.Decoys < 0:
		return fmt.Errorf("redteam: spec: decoys must be ≥ 0")
	case sp.Taps < 0 || sp.Taps == 1:
		return fmt.Errorf("redteam: spec: taps=%d must be 0 (default) or ≥ 2", sp.Taps)
	}
	return nil
}

// ParseSpec parses the campaign text format, starting from DefaultSpec.
func ParseSpec(src string) (Spec, error) {
	sp := DefaultSpec()
	for ln, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		section, rest, ok := strings.Cut(line, ":")
		if !ok {
			return Spec{}, fmt.Errorf("redteam: spec line %d: want \"section: key=value ...\", got %q", ln+1, raw)
		}
		section = strings.ToLower(strings.TrimSpace(section))
		rest = strings.TrimSpace(rest)
		if section == "seed" {
			n, err := strconv.ParseInt(rest, 10, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("redteam: spec line %d: seed: %v", ln+1, err)
			}
			sp.Seed = n
			continue
		}
		for _, field := range strings.Fields(rest) {
			key, val, ok := strings.Cut(field, "=")
			if !ok {
				return Spec{}, fmt.Errorf("redteam: spec line %d: want key=value, got %q", ln+1, field)
			}
			key = strings.ToLower(key)
			if section == "coalition" && key == "strategies" {
				sp.Strategies = sp.Strategies[:0]
				for _, name := range strings.Split(val, "+") {
					st, err := ParseStrategy(name)
					if err != nil {
						return Spec{}, fmt.Errorf("redteam: spec line %d: %v", ln+1, err)
					}
					sp.Strategies = append(sp.Strategies, st)
				}
				continue
			}
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("redteam: spec line %d: %s.%s: %v", ln+1, section, key, err)
			}
			if err := sp.set(section, key, n); err != nil {
				return Spec{}, fmt.Errorf("redteam: spec line %d: %v", ln+1, err)
			}
		}
	}
	if err := sp.Validate(); err != nil {
		return Spec{}, err
	}
	return sp, nil
}

// set stores one parsed numeric key.
func (sp *Spec) set(section, key string, n int64) error {
	switch section + "." + key {
	case "dip.budget":
		sp.DIPBudget = n
	case "dip.maxdips":
		sp.MaxDIPs = int(n)
	case "site.budget":
		sp.SiteBudget = n
	case "site.total":
		sp.TotalBudget = n
	case "site.simwords":
		sp.SimWords = int(n)
	case "coalition.k":
		sp.K = int(n)
	case "harden.decoys":
		sp.Decoys = int(n)
	case "harden.taps":
		sp.Taps = int(n)
	case "harden.seed":
		sp.HardenSeed = n
	default:
		return fmt.Errorf("unknown key %s.%s", section, key)
	}
	return nil
}
