package redteam

import (
	"fmt"
	"strings"

	"repro/internal/attack"
	"repro/internal/circuit"
	"repro/internal/logic"
)

// Strategy selects how a coalition merges its copies into one forged
// instance. The strategies span the realistic attacker spectrum: FewestPins
// is the paper's §III-E adversary, Majority is the natural "vote out the
// outlier" refinement, and Intersect is the strongest structural attack —
// keep only the pins every copy agrees on, which provably reconstructs the
// base form at every detected site.
type Strategy uint8

const (
	// StrategyFewestPins adopts each differing gate's fewest-pin form
	// (attack.Collude): modifications only add pins, so fewer pins is the
	// attacker's best single-copy guess at the original.
	StrategyFewestPins Strategy = iota
	// StrategyMajority adopts each differing gate's most common form across
	// the coalition, breaking ties toward fewer pins. With k ≥ 3 this
	// out-votes any modification carried by a minority of the copies.
	StrategyMajority
	// StrategyIntersect rewires each differing gate to the pins present in
	// every copy. Since modifications only add pins, the intersection is
	// exactly the unfingerprinted form of every detected site — on a
	// coalition whose fingerprints disagree everywhere, this is a full
	// removal, the outcome the paper's tracing argument concedes.
	StrategyIntersect
)

// String names the strategy in specs and reports.
func (st Strategy) String() string {
	switch st {
	case StrategyFewestPins:
		return "fewestpins"
	case StrategyMajority:
		return "majority"
	case StrategyIntersect:
		return "intersect"
	}
	return fmt.Sprintf("Strategy(%d)", uint8(st))
}

// ParseStrategy parses a strategy name as produced by String.
func ParseStrategy(s string) (Strategy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "fewestpins":
		return StrategyFewestPins, nil
	case "majority":
		return StrategyMajority, nil
	case "intersect":
		return StrategyIntersect, nil
	}
	return 0, fmt.Errorf("redteam: unknown strategy %q (want fewestpins, majority or intersect)", s)
}

// Strategies returns all coalition strategies, in spec order.
func Strategies() []Strategy {
	return []Strategy{StrategyFewestPins, StrategyMajority, StrategyIntersect}
}

// Coalition merges the copies under the chosen strategy. k=1 degrades to a
// clean clone with nothing detected, matching attack.Collude.
func Coalition(copies []*circuit.Circuit, st Strategy) (*attack.CollusionResult, error) {
	switch st {
	case StrategyFewestPins:
		return attack.Collude(copies)
	case StrategyMajority:
		return attack.ColludePick(copies, majorityPick)
	case StrategyIntersect:
		return colludeIntersect(copies)
	}
	return nil, fmt.Errorf("redteam: unknown strategy %v", st)
}

// majorityPick votes by canonical signature; ties break toward fewer pins,
// then the lowest copy index, keeping the merge deterministic.
func majorityPick(name string, copies []*circuit.Circuit, ids []circuit.NodeID) int {
	votes := make(map[string]int, len(copies))
	for i := range copies {
		votes[attack.Signature(copies[i], ids[i])]++
	}
	best := 0
	bestVotes := votes[attack.Signature(copies[0], ids[0])]
	bestPins := len(copies[0].Nodes[ids[0]].Fanin)
	for i := 1; i < len(copies); i++ {
		v := votes[attack.Signature(copies[i], ids[i])]
		pins := len(copies[i].Nodes[ids[i]].Fanin)
		if v > bestVotes || (v == bestVotes && pins < bestPins) {
			best, bestVotes, bestPins = i, v, pins
		}
	}
	return best
}

// colludeIntersect keeps, at every differing gate, only the pins whose
// signal name appears on that gate in all copies. Base-function pins
// survive (no catalogue entry removes or renames a pin), added literals and
// decoy pins are dropped (their helper logic carries per-copy fresh names),
// and a gate reduced to a single pin falls back to its single-input form
// (NAND/NOR→INV, AND/OR→BUF) so ConvertSingle modifications unconvert
// cleanly. Matching is deliberately by name, not by the
// inverter-transparent signature detection uses: a signature mismatch can
// come from the pin's own driver being modified, and dropping such a pin
// would change the function.
func colludeIntersect(copies []*circuit.Circuit) (*attack.CollusionResult, error) {
	if len(copies) < 2 {
		return attack.Collude(copies)
	}
	base := copies[0]
	forged := base.Clone()
	res := &attack.CollusionResult{}
	foreign := 0
	for i := range base.Nodes {
		id0 := circuit.NodeID(i)
		if base.Nodes[i].IsPI {
			continue
		}
		name := base.Nodes[i].Name
		ids := make([]circuit.NodeID, len(copies))
		ids[0] = id0
		missing := false
		for c := 1; c < len(copies); c++ {
			id, ok := copies[c].Lookup(name)
			if !ok {
				missing = true
				break
			}
			ids[c] = id
		}
		if missing {
			foreign++
			continue
		}
		sig0 := attack.Signature(base, id0)
		differs := false
		for c := 1; c < len(copies); c++ {
			if attack.Signature(copies[c], ids[c]) != sig0 {
				differs = true
				break
			}
		}
		if !differs {
			continue
		}
		res.DetectedGates = append(res.DetectedGates, name)
		// Multiset-intersect copy0's pins with every other copy's.
		keep := make([]circuit.NodeID, 0, len(base.Nodes[i].Fanin))
		counts := make(map[string]int)
		for _, f := range base.Nodes[i].Fanin {
			counts[base.Nodes[f].Name]++
		}
		for c := 1; c < len(copies); c++ {
			other := make(map[string]int)
			for _, f := range copies[c].Nodes[ids[c]].Fanin {
				other[copies[c].Nodes[f].Name]++
			}
			for d, n := range counts {
				if other[d] < n {
					counts[d] = other[d]
				}
			}
		}
		for _, f := range base.Nodes[i].Fanin {
			if d := base.Nodes[f].Name; counts[d] > 0 {
				counts[d]--
				keep = append(keep, f)
			}
		}
		if len(keep) == 0 {
			// Nothing survives the intersection — only possible on inputs
			// that are not honest instances of one design; leave copy0's
			// form rather than fabricate a gate with no pins.
			continue
		}
		kind := base.Nodes[i].Kind
		if len(keep) == 1 {
			switch kind {
			case logic.Nand, logic.Nor:
				kind = logic.Inv
			case logic.And, logic.Or:
				kind = logic.Buf
			}
		}
		if err := forged.RewireGate(forged.MustLookup(name), kind, keep); err != nil {
			return nil, fmt.Errorf("redteam: intersect at %q: %w", name, err)
		}
	}
	if foreign > len(base.Nodes)/2 {
		return nil, fmt.Errorf("redteam: copies share under half of the layout; not instances of one design")
	}
	swept, _ := forged.Sweep()
	if err := swept.Validate(); err != nil {
		return nil, fmt.Errorf("redteam: forged netlist invalid: %w", err)
	}
	res.Forged = swept
	return res, nil
}
