package redteam

import (
	"testing"

	"repro/internal/attack"
	"repro/internal/bench"
	"repro/internal/cell"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/sim"
)

func testAnalysis(t testing.TB, name string) *core.Analysis {
	t.Helper()
	spec, err := bench.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(spec.Build(), core.DefaultOptions(cell.Default()))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Locations) < 2 {
		t.Fatalf("%s: only %d locations", name, len(a.Locations))
	}
	return a
}

func mustAssign(t testing.TB, a *core.Analysis, bits []bool) core.Assignment {
	t.Helper()
	asg, err := a.AssignmentFromBits(bits)
	if err != nil {
		t.Fatal(err)
	}
	return asg
}

func mustEmbed(t testing.TB, a *core.Analysis, asg core.Assignment) *circuit.Circuit {
	t.Helper()
	cp, err := core.Embed(a, asg)
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

// complementBits fingerprints two buyers with complementary bits on the
// first w locations and zeros elsewhere: every fingerprinted slot differs,
// so localization must surface all of them.
func complementBits(a *core.Analysis, w int) (bitsA, bitsB []bool) {
	n := a.BitCapacity()
	if w > n {
		w = n
	}
	bitsA = make([]bool, n)
	bitsB = make([]bool, n)
	for i := 0; i < w; i++ {
		bitsA[i] = i%2 == 0
		bitsB[i] = !bitsA[i]
	}
	return bitsA, bitsB
}

// TestAttackSubsetProperty: on an unhardened design with an unlimited
// budget, the attack strips exactly the attacked copy's true fingerprint
// sites — never more (soundness) — and the forged result is a functionally
// intact, fully anonymized copy.
func TestAttackSubsetProperty(t *testing.T) {
	a := testAnalysis(t, "c432")
	bitsA, bitsB := complementBits(a, a.BitCapacity())
	asgA := mustAssign(t, a, bitsA)
	asgB := mustAssign(t, a, bitsB)
	cpA := mustEmbed(t, a, asgA)
	cpB := mustEmbed(t, a, asgB)

	rep, err := Attack([]*circuit.Circuit{cpA, cpB}, AttackOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Candidates) == 0 {
		t.Fatal("no candidate sites localized")
	}
	ev := Evaluate(a, asgA, rep)
	if !ev.Subset || len(ev.FalseStrips) != 0 {
		t.Fatalf("stripped non-fingerprint sites: %v", ev.FalseStrips)
	}
	if ev.Unresolved != 0 {
		t.Fatalf("%d sites unresolved with an unlimited budget", ev.Unresolved)
	}
	if ev.BitsRecovered != ev.FingerprintBits {
		t.Fatalf("recovered %d of %d bits with an unlimited budget", ev.BitsRecovered, ev.FingerprintBits)
	}
	// The forged copy still computes the original function...
	mm, err := sim.Compare(a.Circuit, rep.Forged, sim.Random(len(a.Circuit.PIs), 32, 5))
	if err != nil {
		t.Fatal(err)
	}
	if mm != nil {
		t.Fatalf("forged copy broke the function: %v", mm)
	}
	// ...and carries no fingerprint at all: the designer sees a full
	// removal, the outcome the tracing argument concedes for this attacker.
	tr := attack.NewTracer(a)
	tr.Register("buyerA", asgA)
	tr.Register("buyerB", asgB)
	trep, err := tr.Trace(rep.Forged, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if !trep.FullRemoval {
		t.Fatal("complete strip of a complementary pair should read as full removal")
	}
}

// TestAttackDIPCertificate: the DIP loop must terminate immediately with an
// UNSAT certificate — ODC modifications are function-preserving, so no
// input/output experiment distinguishes any two configurations.
func TestAttackDIPCertificate(t *testing.T) {
	a := testAnalysis(t, "c432")
	bitsA, bitsB := complementBits(a, a.BitCapacity())
	cpA := mustEmbed(t, a, mustAssign(t, a, bitsA))
	cpB := mustEmbed(t, a, mustAssign(t, a, bitsB))
	rep, err := Attack([]*circuit.Circuit{cpA, cpB}, AttackOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.KeyBits == 0 {
		t.Fatal("keyed miter has no key bits")
	}
	if !rep.IOIndistinguishable {
		t.Fatal("expected an I/O-indistinguishability certificate")
	}
	if rep.DIPs != 0 {
		t.Fatalf("found %d DIPs against function-preserving modifications", rep.DIPs)
	}
}

// TestAttackSingleCopy: a lone copy gives the attacker nothing to diff;
// the attack degrades gracefully instead of failing.
func TestAttackSingleCopy(t *testing.T) {
	a := testAnalysis(t, "c432")
	bitsA, _ := complementBits(a, a.BitCapacity())
	asgA := mustAssign(t, a, bitsA)
	cpA := mustEmbed(t, a, asgA)
	rep, err := Attack([]*circuit.Circuit{cpA}, AttackOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Candidates) != 0 || rep.KeyBits != 0 {
		t.Fatalf("single copy localized %d candidates", len(rep.Candidates))
	}
	ev := Evaluate(a, asgA, rep)
	if ev.BitsRecovered != 0 {
		t.Fatalf("single copy recovered %d bits", ev.BitsRecovered)
	}
	if _, err := tracePayload(a, asgA, rep.Forged); err != nil {
		t.Fatal(err)
	}
}

// tracePayload re-extracts the fingerprint from a forged copy; used to
// confirm the forgery is still a valid instance of the design.
func tracePayload(a *core.Analysis, asg core.Assignment, forged *circuit.Circuit) (core.Assignment, error) {
	got, _, err := core.ExtractTolerant(a, forged)
	if err != nil {
		return nil, err
	}
	_ = asg
	return got, nil
}

// TestHardenReducesBits: the point of the Harden knob. Fix the attacker's
// total conflict budget at double what the unhardened attack cost, then
// show decoy strip-proofs drain it before the true sites resolve — the
// attacker recovers strictly fewer fingerprint bits from hardened copies.
func TestHardenReducesBits(t *testing.T) {
	for _, name := range []string{"c432", "c880", "c1355"} {
		t.Run(name, func(t *testing.T) {
			a := testAnalysis(t, name)
			bitsA, bitsB := complementBits(a, 12)
			asgA := mustAssign(t, a, bitsA)
			asgB := mustAssign(t, a, bitsB)

			plain := []*circuit.Circuit{mustEmbed(t, a, asgA), mustEmbed(t, a, asgB)}
			repU, err := Attack(plain, AttackOptions{Seed: 9, MaxDIPs: -1})
			if err != nil {
				t.Fatal(err)
			}
			evU := Evaluate(a, asgA, repU)
			if evU.BitsRecovered == 0 {
				t.Fatal("unhardened baseline recovered nothing; test design broken")
			}

			budget := 2*repU.StripConflicts + 1000
			hopts := core.HardenOptions{Decoys: 8, Taps: 12}
			hopts.Seed = 101
			hA, decoysA, err := core.EmbedHardened(a, asgA, hopts)
			if err != nil {
				t.Fatal(err)
			}
			hopts.Seed = 202
			hB, _, err := core.EmbedHardened(a, asgB, hopts)
			if err != nil {
				t.Fatal(err)
			}
			if len(decoysA) == 0 {
				t.Fatal("no decoys inserted")
			}
			repH, err := Attack([]*circuit.Circuit{hA, hB}, AttackOptions{Seed: 9, MaxDIPs: -1, TotalBudget: budget})
			if err != nil {
				t.Fatal(err)
			}
			evH := Evaluate(a, asgA, repH)
			t.Logf("%s: unhardened %d/%d bits (%d conflicts); hardened %d/%d bits under budget %d (%d conflicts, exhausted=%v)",
				name, evU.BitsRecovered, evU.FingerprintBits, repU.StripConflicts,
				evH.BitsRecovered, evH.FingerprintBits, budget, repH.StripConflicts, repH.BudgetExhausted)
			if evH.BitsRecovered >= evU.BitsRecovered {
				t.Fatalf("hardening did not reduce recovery: %d ≥ %d", evH.BitsRecovered, evU.BitsRecovered)
			}
		})
	}
}
