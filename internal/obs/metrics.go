package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// MetricKind discriminates snapshot records.
type MetricKind string

// The metric kinds a snapshot can carry.
const (
	KindCounter   MetricKind = "counter"
	KindGauge     MetricKind = "gauge"
	KindHistogram MetricKind = "histogram"
)

// MetricSnapshot is one metric's state at Snapshot time.
type MetricSnapshot struct {
	// Name is "subsystem.name" (e.g. "sat.conflicts").
	Name string     `json:"name"`
	Kind MetricKind `json:"kind"`
	// Nondet marks metrics whose value depends on goroutine scheduling or
	// wall time; deterministic snapshots zero them.
	Nondet bool  `json:"nondet,omitempty"`
	Value  int64 `json:"value"`
	// Histogram-only fields: Count observations summing to Sum, bucketed
	// by power of two (Buckets[i] counts values in [2^(i-1), 2^i)).
	Count   int64   `json:"count,omitempty"`
	Buckets []int64 `json:"buckets,omitempty"`
}

// metric is the common registry entry.
type metric interface {
	name() string
	nondet() bool
	snapshot() MetricSnapshot
	reset()
}

var registry struct {
	mu sync.Mutex
	m  map[string]metric
}

func register(m metric) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.m == nil {
		registry.m = make(map[string]metric)
	}
	if _, dup := registry.m[m.name()]; dup {
		panic("obs: duplicate metric " + m.name())
	}
	registry.m[m.name()] = m
}

// Option configures a metric at registration.
type Option func(*meta)

type meta struct {
	fullName string
	isNondet bool
}

func (m *meta) name() string { return m.fullName }
func (m *meta) nondet() bool { return m.isNondet }

// Nondet marks the metric as scheduling- or time-dependent: its value is
// zeroed in deterministic snapshots (e.g. busy-time accounting, cache
// evictions whose order depends on goroutine interleaving).
func Nondet() Option { return func(m *meta) { m.isNondet = true } }

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	meta
	v atomic.Int64
}

// NewCounter registers a counter named subsystem.name.
func NewCounter(subsystem, name string, opts ...Option) *Counter {
	c := &Counter{meta: newMeta(subsystem, name, opts)}
	register(c)
	return c
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) snapshot() MetricSnapshot {
	return MetricSnapshot{Name: c.fullName, Kind: KindCounter, Nondet: c.isNondet, Value: c.v.Load()}
}
func (c *Counter) reset() { c.v.Store(0) }

// Gauge is an atomic instantaneous value (set, add, or track a maximum).
type Gauge struct {
	meta
	v atomic.Int64
}

// NewGauge registers a gauge named subsystem.name.
func NewGauge(subsystem, name string, opts ...Option) *Gauge {
	g := &Gauge{meta: newMeta(subsystem, name, opts)}
	register(g)
	return g
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by n (useful for in-flight counts).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// SetMax raises the gauge to v if v is larger.
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) snapshot() MetricSnapshot {
	return MetricSnapshot{Name: g.fullName, Kind: KindGauge, Nondet: g.isNondet, Value: g.v.Load()}
}
func (g *Gauge) reset() { g.v.Store(0) }

// histBuckets is the fixed bucket count: bucket i holds observations v with
// bit-length i, i.e. bucket 0 counts v ≤ 0, bucket i counts 2^(i-1) ≤ v < 2^i.
const histBuckets = 32

// Histogram is a lock-free power-of-two histogram of int64 observations.
type Histogram struct {
	meta
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// NewHistogram registers a histogram named subsystem.name.
func NewHistogram(subsystem, name string, opts ...Option) *Histogram {
	h := &Histogram{meta: newMeta(subsystem, name, opts)}
	register(h)
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	b := 0
	if v > 0 {
		b = bits.Len64(uint64(v))
		if b >= histBuckets {
			b = histBuckets - 1
		}
	}
	h.buckets[b].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

func (h *Histogram) snapshot() MetricSnapshot {
	s := MetricSnapshot{
		Name:   h.fullName,
		Kind:   KindHistogram,
		Nondet: h.isNondet,
		Value:  h.sum.Load(),
		Count:  h.count.Load(),
	}
	// Trim trailing empty buckets so snapshots stay compact.
	last := -1
	var bs [histBuckets]int64
	for i := range h.buckets {
		bs[i] = h.buckets[i].Load()
		if bs[i] != 0 {
			last = i
		}
	}
	if last >= 0 {
		s.Buckets = append([]int64(nil), bs[:last+1]...)
	}
	return s
}

func (h *Histogram) reset() {
	h.count.Store(0)
	h.sum.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

func newMeta(subsystem, name string, opts []Option) meta {
	m := meta{fullName: subsystem + "." + name}
	for _, o := range opts {
		o(&m)
	}
	return m
}

// Snapshot returns every registered metric's state, sorted by name. In
// deterministic mode, metrics declared Nondet are reported with zeroed
// values so fixed-seed snapshots are byte-identical run to run.
func Snapshot(deterministic bool) []MetricSnapshot {
	registry.mu.Lock()
	out := make([]MetricSnapshot, 0, len(registry.m))
	for _, m := range registry.m {
		s := m.snapshot()
		if deterministic && s.Nondet {
			s.Value, s.Count, s.Buckets = 0, 0, nil
		}
		out = append(out, s)
	}
	registry.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Reset zeroes every registered metric and drops any recorded spans. Tests
// and CLIs call it so each run's snapshot reflects that run alone.
func Reset() {
	registry.mu.Lock()
	for _, m := range registry.m {
		m.reset()
	}
	registry.mu.Unlock()
	tracer.mu.Lock()
	tracer.spans = nil
	tracer.mu.Unlock()
}
