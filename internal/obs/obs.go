// Package obs is the repository's observability layer: lightweight span
// tracing and typed counters/gauges/histograms, designed so every hot path
// (analysis, embedding, incremental verification, SAT search, simulation,
// the constraint heuristics and the worker pool) can be instrumented
// permanently without measurable cost when observability is off.
//
// Two primitives:
//
//   - Spans (Start/End) record named wall-clock intervals, nestable via
//     Span.Child and safe to create and end from any goroutine. When
//     tracing is disabled — the default — Start returns nil and every Span
//     method no-ops on a nil receiver, so the disabled cost is one atomic
//     load and a nil check.
//   - Metrics (NewCounter/NewGauge/NewHistogram) are registered once per
//     subsystem as package-level vars and updated with single atomic
//     operations; they are always on, because an atomic add is cheaper
//     than a branch that decides whether to add.
//
// Snapshot drains both into deterministic, name-sorted records which
// internal/report serializes into the per-run JSON manifest. Metrics whose
// values depend on goroutine scheduling or wall time (declared with the
// Nondet option) are zeroed when a snapshot is taken in deterministic
// mode, so fixed-seed manifests are byte-identical run to run.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// enabled gates span collection (and any other timing-priced
// instrumentation call sites choose to guard). Metrics ignore it.
var enabled atomic.Bool

// Enable switches span tracing on or off process-wide. CLIs enable it when
// a -report or -trace flag is given; the default is off.
func Enable(on bool) { enabled.Store(on) }

// Enabled reports whether span tracing is on. Call sites may also use it to
// guard instrumentation whose mere computation is expensive (e.g. calling
// time.Now for utilization accounting).
func Enabled() bool { return enabled.Load() }

// SpanRecord is one completed span as drained by Snapshot.
type SpanRecord struct {
	// Name identifies the operation; by convention "subsystem.op" or, for
	// per-item stage work, "stage/item" (e.g. "table2/c880").
	Name string
	// Start is the wall-clock start time (zeroed in deterministic
	// snapshots).
	Start time.Time
	// Dur is the span's duration (zeroed in deterministic snapshots).
	Dur time.Duration
	// Depth is the nesting depth: 0 for root spans, parent.Depth+1 for
	// children.
	Depth int
}

// Span is an in-flight traced interval. A nil *Span (what Start returns
// while tracing is disabled) is valid: every method no-ops.
type Span struct {
	name  string
	start time.Time
	depth int
}

// tracer is the process-wide completed-span sink.
var tracer struct {
	mu    sync.Mutex
	spans []SpanRecord
}

// Start begins a root span. Returns nil (a no-op span) when tracing is
// disabled.
func Start(name string) *Span {
	if !enabled.Load() {
		return nil
	}
	return &Span{name: name, start: time.Now()}
}

// Child begins a nested span under s. On a nil receiver it behaves like
// Start would with tracing disabled.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{name: name, start: time.Now(), depth: s.depth + 1}
}

// End completes the span and records it. Safe on a nil receiver and from
// any goroutine; a span must be ended at most once.
func (s *Span) End() {
	if s == nil {
		return
	}
	rec := SpanRecord{Name: s.name, Start: s.start, Dur: time.Since(s.start), Depth: s.depth}
	tracer.mu.Lock()
	tracer.spans = append(tracer.spans, rec)
	tracer.mu.Unlock()
}

// DrainSpans returns all completed spans and clears the sink. Spans are
// ordered by start time (name breaking ties), so the order does not depend
// on which goroutine finished first.
func DrainSpans() []SpanRecord {
	tracer.mu.Lock()
	out := tracer.spans
	tracer.spans = nil
	tracer.mu.Unlock()
	sortSpans(out)
	return out
}

// sortSpans orders by (Start, Name, Depth); a stable, scheduling-independent
// order for spans created from deterministic work.
func sortSpans(spans []SpanRecord) {
	// Insertion sort: span counts are small (one per stage/circuit), and
	// this keeps the package dependency-free.
	for i := 1; i < len(spans); i++ {
		for j := i; j > 0 && spanLess(spans[j], spans[j-1]); j-- {
			spans[j], spans[j-1] = spans[j-1], spans[j]
		}
	}
}

func spanLess(a, b SpanRecord) bool {
	if !a.Start.Equal(b.Start) {
		return a.Start.Before(b.Start)
	}
	if a.Name != b.Name {
		return a.Name < b.Name
	}
	return a.Depth < b.Depth
}
