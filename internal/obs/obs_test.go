package obs

import (
	"sync"
	"testing"
	"time"
)

// Metrics used across tests; registered once because the registry rejects
// duplicate names.
var (
	testCounter = NewCounter("obstest", "counter")
	testGauge   = NewGauge("obstest", "gauge")
	testHist    = NewHistogram("obstest", "hist")
	testNondet  = NewCounter("obstest", "busy_ns", Nondet())
)

func snap(t *testing.T, name string, det bool) MetricSnapshot {
	t.Helper()
	for _, s := range Snapshot(det) {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("metric %q not in snapshot", name)
	return MetricSnapshot{}
}

func TestCounterGaugeHistogram(t *testing.T) {
	Reset()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				testCounter.Inc()
				testGauge.Add(1)
				testHist.Observe(int64(j % 7))
			}
		}()
	}
	wg.Wait()
	if got := testCounter.Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := testGauge.Value(); got != 8000 {
		t.Errorf("gauge = %d, want 8000", got)
	}
	if got := testHist.Count(); got != 8000 {
		t.Errorf("hist count = %d, want 8000", got)
	}
	// 1000 = 142 full 0..6 cycles (sum 21 each) + leftovers 0..5 (sum 15).
	wantSum := int64(8 * (142*21 + 15))
	if got := testHist.Sum(); got != wantSum {
		t.Errorf("hist sum = %d, want %d", got, wantSum)
	}
}

func TestGaugeSetMax(t *testing.T) {
	Reset()
	testGauge.SetMax(5)
	testGauge.SetMax(3)
	if got := testGauge.Value(); got != 5 {
		t.Errorf("SetMax kept %d, want 5", got)
	}
	testGauge.SetMax(9)
	if got := testGauge.Value(); got != 9 {
		t.Errorf("SetMax kept %d, want 9", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	Reset()
	// Bucket index is the bit length: 0→b0, 1→b1, 2,3→b2, 4..7→b3.
	for _, v := range []int64{0, 1, 2, 3, 4, 7, -5} {
		testHist.Observe(v)
	}
	s := snap(t, "obstest.hist", false)
	want := []int64{2, 1, 2, 2} // {0,-5}, {1}, {2,3}, {4,7}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %v, want %v", s.Buckets, want)
	}
	for i := range want {
		if s.Buckets[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", s.Buckets, want)
		}
	}
}

func TestSnapshotSortedAndDeterministicZeroing(t *testing.T) {
	Reset()
	testCounter.Add(3)
	testNondet.Add(12345)
	all := Snapshot(false)
	for i := 1; i < len(all); i++ {
		if all[i-1].Name >= all[i].Name {
			t.Fatalf("snapshot not sorted: %q before %q", all[i-1].Name, all[i].Name)
		}
	}
	if s := snap(t, "obstest.busy_ns", false); s.Value != 12345 || !s.Nondet {
		t.Errorf("nondet metric = %+v, want value 12345 and Nondet", s)
	}
	if s := snap(t, "obstest.busy_ns", true); s.Value != 0 {
		t.Errorf("deterministic snapshot kept nondet value %d", s.Value)
	}
	if s := snap(t, "obstest.counter", true); s.Value != 3 {
		t.Errorf("deterministic snapshot zeroed a deterministic counter: %d", s.Value)
	}
}

func TestSpansDisabledAreFree(t *testing.T) {
	Reset()
	Enable(false)
	sp := Start("never")
	if sp != nil {
		t.Fatal("Start returned a live span while disabled")
	}
	sp.Child("nested").End() // all no-ops on nil receivers
	sp.End()
	if got := DrainSpans(); len(got) != 0 {
		t.Fatalf("disabled tracing recorded %d spans", len(got))
	}
}

func TestSpansNestingAndDrainOrder(t *testing.T) {
	Reset()
	Enable(true)
	defer Enable(false)
	root := Start("root")
	child := root.Child("child")
	time.Sleep(time.Millisecond)
	child.End()
	root.End()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := Start("goroutine")
			s.End()
		}()
	}
	wg.Wait()
	spans := DrainSpans()
	if len(spans) != 6 {
		t.Fatalf("drained %d spans, want 6", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["root"].Depth != 0 || byName["child"].Depth != 1 {
		t.Errorf("depths: root=%d child=%d, want 0/1", byName["root"].Depth, byName["child"].Depth)
	}
	if byName["child"].Dur <= 0 || byName["root"].Dur < byName["child"].Dur {
		t.Errorf("durations: root=%v child=%v", byName["root"].Dur, byName["child"].Dur)
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Start.Before(spans[i-1].Start) {
			t.Fatal("spans not ordered by start time")
		}
	}
	if got := DrainSpans(); len(got) != 0 {
		t.Fatalf("second drain returned %d spans", len(got))
	}
}

func TestReset(t *testing.T) {
	Reset()
	testCounter.Add(7)
	testHist.Observe(9)
	Enable(true)
	Start("x").End()
	Enable(false)
	Reset()
	if got := testCounter.Value(); got != 0 {
		t.Errorf("counter survived Reset: %d", got)
	}
	if got := testHist.Count(); got != 0 {
		t.Errorf("histogram survived Reset: %d", got)
	}
	if got := DrainSpans(); len(got) != 0 {
		t.Errorf("spans survived Reset: %d", len(got))
	}
}
