package registry

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/benchfmt"
	"repro/internal/cell"
	"repro/internal/circuit"
	"repro/internal/core"
)

func analyzed(t testing.TB, name string) *core.Analysis {
	t.Helper()
	spec, err := bench.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(spec.Build(), core.DefaultOptions(cell.Default()))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestIssueAndTraceExact(t *testing.T) {
	a := analyzed(t, "c880")
	r := New(a)
	copies := map[string]*circuit.Circuit{}
	for _, buyer := range []string{"alpha", "beta", "gamma"} {
		cp, v, err := r.Issue(a, buyer)
		if err != nil {
			t.Fatal(err)
		}
		if v.Sign() < 0 {
			t.Fatal("negative fingerprint")
		}
		copies[buyer] = cp
	}
	if got := r.Buyers(); len(got) != 3 || got[0] != "alpha" {
		t.Fatalf("Buyers = %v", got)
	}
	// Trace each verbatim copy back (heredity: trace works on a clone).
	for buyer, cp := range copies {
		got, err := r.TraceExact(a, cp.Clone())
		if err != nil {
			t.Fatalf("%s: %v", buyer, err)
		}
		if got != buyer {
			t.Errorf("traced %q, want %q", got, buyer)
		}
	}
	// Re-issuing is idempotent: same fingerprint, traces to same buyer.
	cp2, _, err := r.Issue(a, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.TraceExact(a, cp2)
	if err != nil || got != "alpha" {
		t.Fatalf("re-issue trace: %v %v", got, err)
	}
	// An unregistered fingerprint is reported as such.
	if _, err := r.TraceExact(a, a.Circuit.Clone()); err == nil {
		t.Error("clean copy traced to a buyer")
	}
	// Empty buyer name rejected.
	if _, _, err := r.Issue(a, ""); err == nil {
		t.Error("empty buyer accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	a := analyzed(t, "c432")
	r := New(a)
	cp, _, err := r.Issue(a, "zeta")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "zeta") || !strings.Contains(buf.String(), "digest") {
		t.Errorf("serialised registry malformed:\n%s", buf.String())
	}
	r2, err := Load(bytes.NewReader(buf.Bytes()), a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r2.TraceExact(a, cp)
	if err != nil || got != "zeta" {
		t.Fatalf("loaded registry trace: %v %v", got, err)
	}
}

func TestDigestMismatchRejected(t *testing.T) {
	a1 := analyzed(t, "c432")
	a2 := analyzed(t, "c880")
	r := New(a1)
	if _, _, err := r.Issue(a2, "x"); err == nil {
		t.Error("issue against wrong design accepted")
	}
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bytes.NewReader(buf.Bytes()), a2); err == nil {
		t.Error("load against wrong design accepted")
	}
	if _, err := r.TraceExact(a2, a2.Circuit); err == nil {
		t.Error("trace against wrong design accepted")
	}
	// Corrupt JSON rejected.
	if _, err := Load(strings.NewReader("{nope"), a1); err == nil {
		t.Error("corrupt JSON accepted")
	}
}

func TestTraceScoresAfterCollusion(t *testing.T) {
	a := analyzed(t, "c880")
	r := New(a)
	var copies []*circuit.Circuit
	buyers := []string{"p1", "p2", "p3", "p4", "p5"}
	for _, b := range buyers {
		cp, _, err := r.Issue(a, b)
		if err != nil {
			t.Fatal(err)
		}
		copies = append(copies, cp)
	}
	// p1 and p2 collude by averaging their netlists through the attack
	// package (exercised indirectly via TraceScores on a forged copy built
	// from p1's instance with p2-differing sites reset). Here we simply
	// score p1's verbatim copy: p1 must rank first with fraction 1.0.
	scores, err := r.TraceScores(a, copies[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 5 {
		t.Fatalf("%d scores", len(scores))
	}
	if scores[0].Name != "p1" || scores[0].Fraction() != 1.0 {
		t.Errorf("top score %q %.3f, want p1 at 1.0", scores[0].Name, scores[0].Fraction())
	}
	for _, s := range scores[1:] {
		if s.Name != "p1" && s.Fraction() == 1.0 && s.TotalPresent > 0 {
			t.Errorf("innocent %q also scores 1.0", s.Name)
		}
	}
}

func TestDigestSensitivity(t *testing.T) {
	a := analyzed(t, "c432")
	d1 := DesignDigest(a)
	// A different analysis option set (fewer targets) changes the digest.
	spec, err := bench.ByName("c432")
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions(cell.Default())
	opts.MaxTargetsPerLocation = 1
	a2, err := core.Analyze(spec.Build(), opts)
	if err != nil {
		t.Fatal(err)
	}
	d2 := DesignDigest(a2)
	if a.TotalTargets() != a2.TotalTargets() {
		if d1 == d2 {
			t.Error("digest ignored analysis shape change")
		}
	}
	// Deterministic.
	if DesignDigest(a) != d1 {
		t.Error("digest not deterministic")
	}
}

// TestConcurrentIssueRace is the -race regression for the registry's
// goroutine-safety contract: many goroutines issue distinct buyers while
// others trace, list and save concurrently. Run with -race (make ci does).
func TestConcurrentIssueRace(t *testing.T) {
	a := analyzed(t, "c880")
	r := New(a)
	const buyers = 16
	copies := make([]*circuit.Circuit, buyers)
	var wg sync.WaitGroup
	errs := make([]error, buyers)
	for i := 0; i < buyers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cp, _, err := r.Issue(a, fmt.Sprintf("buyer-%02d", i))
			copies[i], errs[i] = cp, err
		}(i)
	}
	// Concurrent readers: listing, serialising and tracing while issuance
	// is in flight must not race (values may be mid-flight, errors are ok).
	for k := 0; k < 4; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				_ = r.Buyers()
				_ = r.NumIssued()
				if err := r.Save(io.Discard); err != nil {
					t.Error(err)
				}
				_, _ = r.TraceExact(a, a.Circuit)
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("buyer %d: %v", i, err)
		}
	}
	if got := r.NumIssued(); got != buyers {
		t.Fatalf("NumIssued = %d, want %d", got, buyers)
	}
	// Every concurrently issued copy traces back to its buyer.
	for i, cp := range copies {
		want := fmt.Sprintf("buyer-%02d", i)
		got, err := r.TraceExact(a, cp)
		if err != nil || got != want {
			t.Errorf("copy %d traced to %q (%v), want %q", i, got, err, want)
		}
	}
}

// TestIssueBatch: one call mints every buyer, agrees with the serial Issue
// path, and re-batching is idempotent (recorded values, Fresh=false).
func TestIssueBatch(t *testing.T) {
	a := analyzed(t, "c880")
	r := New(a)
	serial, sv, err := r.Issue(a, "pre")
	if err != nil {
		t.Fatal(err)
	}

	buyers := []string{"a", "b", "c", "pre"}
	items, err := r.IssueBatch(context.Background(), a, buyers)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 4 {
		t.Fatalf("got %d items, want 4", len(items))
	}
	for i, it := range items {
		if it.Buyer != buyers[i] {
			t.Errorf("item %d buyer %q, want %q", i, it.Buyer, buyers[i])
		}
		got, err := r.TraceExact(a, it.Circuit.Clone())
		if err != nil || got != it.Buyer {
			t.Errorf("batch copy for %q traced to %q (%v)", it.Buyer, got, err)
		}
	}
	// The pre-issued buyer was re-minted, not re-reserved.
	pre := items[3]
	if pre.Fresh {
		t.Error("pre-issued buyer marked Fresh in batch")
	}
	if pre.Value.Cmp(sv) != 0 {
		t.Errorf("batch re-mint value %s, want serial %s", pre.Value, sv)
	}
	var sb, bb bytes.Buffer
	if err := benchfmt.Write(&sb, serial); err != nil {
		t.Fatal(err)
	}
	if err := benchfmt.Write(&bb, pre.Circuit); err != nil {
		t.Fatal(err)
	}
	if sb.String() != bb.String() {
		t.Error("batch re-mint differs from serial copy")
	}

	// Re-batching the whole list is idempotent.
	again, err := r.IssueBatch(context.Background(), a, buyers)
	if err != nil {
		t.Fatal(err)
	}
	for i := range again {
		if again[i].Fresh {
			t.Errorf("re-batch item %d marked Fresh", i)
		}
		if again[i].Value.Cmp(items[i].Value) != 0 {
			t.Errorf("re-batch value for %q changed", again[i].Buyer)
		}
	}
	if got := len(r.Buyers()); got != 4 {
		t.Errorf("registry holds %d buyers, want 4", got)
	}
}

// TestIssueBatchValidation: duplicate and empty buyer names reject the
// whole batch before any record is created.
func TestIssueBatchValidation(t *testing.T) {
	a := analyzed(t, "c880")
	r := New(a)
	if _, err := r.IssueBatch(context.Background(), a, []string{"x", "x"}); err == nil {
		t.Error("duplicate buyers accepted")
	}
	if _, err := r.IssueBatch(context.Background(), a, []string{"x", ""}); err == nil {
		t.Error("empty buyer accepted")
	}
	if got := len(r.Buyers()); got != 0 {
		t.Errorf("rejected batch left %d records behind", got)
	}
}

// TestIssueBatchCancellation: a context cancelled mid-batch returns an
// error and releases every fresh reservation, leaving pre-existing records
// untouched.
func TestIssueBatchCancellation(t *testing.T) {
	a := analyzed(t, "c880")
	r := New(a)
	if _, _, err := r.Issue(a, "keep"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.IssueBatch(ctx, a, []string{"keep", "n1", "n2"}); err == nil {
		t.Fatal("cancelled batch succeeded")
	}
	if got := r.Buyers(); len(got) != 1 || got[0] != "keep" {
		t.Errorf("after cancelled batch Buyers = %v, want [keep]", got)
	}
}

// TestReleaseItems keeps non-fresh records: releasing a failed batch must
// never delete a buyer who was issued before the batch started.
func TestReleaseItems(t *testing.T) {
	a := analyzed(t, "c880")
	r := New(a)
	if _, _, err := r.Issue(a, "old"); err != nil {
		t.Fatal(err)
	}
	items, err := r.IssueBatch(context.Background(), a, []string{"old", "new"})
	if err != nil {
		t.Fatal(err)
	}
	r.ReleaseItems(items)
	if got := r.Buyers(); len(got) != 1 || got[0] != "old" {
		t.Errorf("after release Buyers = %v, want [old]", got)
	}
}
