// Package registry persists the IP vendor's issued-fingerprint records —
// the bookkeeping §III-E presumes ("the designer can compare the
// fingerprinted IP with the design ... to obtain the fingerprint" and then
// look up which buyer it was issued to). A Registry maps buyer names to
// fingerprint values (mixed-radix integers over the design's modification
// slots) and serialises to JSON, keyed by a digest of the design so a
// registry cannot accidentally be used with the wrong netlist.
//
// A Registry is safe for concurrent use: Issue, TraceExact, TraceScores,
// Buyers and Save may be called from any number of goroutines (the serving
// daemon in internal/serve does exactly that). The expensive circuit work —
// embedding a copy, extracting a suspect's assignment — runs outside the
// internal lock; only the issued-record map is guarded.
package registry

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/big"
	"sort"
	"sync"

	"repro/internal/attack"
	"repro/internal/circuit"
	"repro/internal/core"
)

// Registry records issued fingerprints for one design.
type Registry struct {
	// mu guards Issued. The exported fields are set at construction/load
	// time and never mutated afterwards, so reads of Design/Digest need no
	// lock; every access to Issued takes it.
	mu sync.RWMutex

	// Design is the circuit name (informational).
	Design string `json:"design"`
	// Digest fingerprints the analysed netlist structure; Load rejects a
	// registry whose digest does not match the analysis it is used with.
	Digest string `json:"digest"`
	// Issued maps buyer name → decimal fingerprint value. Callers must not
	// access it directly while other goroutines use the registry; it is
	// exported only for JSON serialisation.
	Issued map[string]string `json:"issued"`

	// byValue is the reverse index (decimal value → buyer) behind the
	// collision check — built lazily under mu, never serialised. Without it
	// every fresh reservation scans the whole record map, which turns
	// fleet-scale batch minting quadratic.
	byValue map[string]string
}

// valueIndex returns the reverse value→buyer index, building it from the
// records on first use. The caller must hold mu for writing.
func (r *Registry) valueIndex() map[string]string {
	if r.byValue == nil {
		r.byValue = make(map[string]string, len(r.Issued))
		for buyer, val := range r.Issued {
			r.byValue[val] = buyer
		}
	}
	return r.byValue
}

// DesignDigest hashes the structural identity of the analysed design: the
// canonical node list plus the location/target/variant shape. Any change to
// the netlist or the analysis options changes the digest.
func DesignDigest(a *core.Analysis) string {
	h := sha256.New()
	io.WriteString(h, a.Circuit.String())
	for i := range a.Locations {
		loc := &a.Locations[i]
		fmt.Fprintf(h, "L%d:%d:%d:%d;", loc.Primary, loc.FFCRoot, loc.Trigger, len(loc.Targets))
		for j := range loc.Targets {
			fmt.Fprintf(h, "T%d:%d;", loc.Targets[j].Gate, len(loc.Targets[j].Variants))
		}
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// New creates an empty registry bound to the analysed design.
func New(a *core.Analysis) *Registry {
	return &Registry{
		Design: a.Circuit.Name,
		Digest: DesignDigest(a),
		Issued: map[string]string{},
	}
}

// Issue assigns the buyer a fresh fingerprint value derived
// deterministically from the buyer name (keyed hash reduced modulo the
// design's combination count), embeds it, and records it. Issuing the same
// buyer twice returns the same instance; two buyers colliding on a value is
// rejected (retry with a different name — astronomically unlikely beyond
// toy designs). Concurrent Issue calls for distinct buyers are safe and
// embed their copies in parallel; the record map alone is serialised.
func (r *Registry) Issue(a *core.Analysis, buyer string) (*circuit.Circuit, *big.Int, error) {
	if err := r.check(a); err != nil {
		return nil, nil, err
	}
	if buyer == "" {
		return nil, nil, fmt.Errorf("registry: empty buyer name")
	}
	combos := a.Combinations()
	if combos.Sign() <= 0 || combos.Cmp(big.NewInt(1)) == 0 {
		return nil, nil, fmt.Errorf("registry: design has no fingerprint capacity")
	}
	value, fresh, err := r.reserve(buyer, combos)
	if err != nil {
		return nil, nil, err
	}
	asg, err := a.AssignmentFromInt(value)
	if err != nil {
		r.release(buyer, fresh)
		return nil, nil, err
	}
	cp, err := core.Embed(a, asg)
	if err != nil {
		r.release(buyer, fresh)
		return nil, nil, err
	}
	return cp, value, nil
}

// reserve returns the buyer's recorded fingerprint value, deriving and
// recording a fresh one (fresh=true) when the buyer is new. It holds the
// write lock only around the map access, so the expensive embed that
// follows runs unlocked.
func (r *Registry) reserve(buyer string, combos *big.Int) (value *big.Int, fresh bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.Issued[buyer]; ok {
		v, ok2 := new(big.Int).SetString(prev, 10)
		if !ok2 {
			return nil, false, fmt.Errorf("registry: corrupt record for %q", buyer)
		}
		return v, false, nil
	}
	value = r.deriveValue(buyer, combos)
	// Collision check against existing records.
	dec := value.String()
	idx := r.valueIndex()
	if other, ok := idx[dec]; ok {
		return nil, false, fmt.Errorf("registry: fingerprint collision between %q and %q", buyer, other)
	}
	r.Issued[buyer] = dec
	idx[dec] = buyer
	return value, true, nil
}

// deriveValue is the deterministic buyer→fingerprint derivation: a keyed
// hash of the buyer name reduced modulo the design's combination count.
func (r *Registry) deriveValue(buyer string, combos *big.Int) *big.Int {
	sum := sha256.Sum256([]byte("odcfp-issue:" + r.Digest + ":" + buyer))
	value := new(big.Int).SetBytes(sum[:])
	return value.Mod(value, combos)
}

// release drops a reservation made by reserve when the embed that followed
// it failed, so a failed Issue leaves no record behind. Pre-existing
// records (fresh=false) are kept.
func (r *Registry) release(buyer string, fresh bool) {
	if !fresh {
		return
	}
	r.mu.Lock()
	r.deleteRecord(buyer)
	r.mu.Unlock()
}

// deleteRecord drops a buyer's record and its reverse-index entry. The
// caller must hold mu for writing.
func (r *Registry) deleteRecord(buyer string) {
	if val, ok := r.Issued[buyer]; ok && r.byValue != nil {
		delete(r.byValue, val)
	}
	delete(r.Issued, buyer)
}

// BatchItem is one minted copy out of an IssueBatch call.
type BatchItem struct {
	// Buyer names the copy's recipient.
	Buyer string
	// Circuit is the fingerprinted netlist.
	Circuit *circuit.Circuit
	// Value is the embedded fingerprint (mixed-radix integer).
	Value *big.Int
	// Fresh reports whether this batch created the buyer's record (false:
	// the buyer was already issued and the recorded value was re-minted).
	Fresh bool
}

// IssueBatch mints copies for every buyer in one reservation: all values
// are reserved up front — collision-checked against existing records and
// against each other — before any embedding starts, then each copy is
// embedded with a cancellation check per copy. On any failure (an embed
// error, a duplicate buyer in the batch, or ctx dying between copies)
// every reservation the batch created is released, so a partial failure
// leaves the registry exactly as it was. Buyers already issued keep their
// recorded value, making a retried batch idempotent copy-for-copy.
//
// The expensive per-copy embeds run outside the registry lock, so batches
// for distinct designs — and interactive Issue calls — proceed
// concurrently.
func (r *Registry) IssueBatch(ctx context.Context, a *core.Analysis, buyers []string) ([]BatchItem, error) {
	items, err := r.IssueBatchValues(ctx, a, buyers)
	if err != nil {
		return nil, err
	}
	for i := range items {
		// Per-copy cancellation point: a dead context abandons the batch
		// before the next embed and rolls back its reservations.
		if err := ctx.Err(); err != nil {
			r.ReleaseItems(items)
			return nil, err
		}
		asg, err := a.AssignmentFromInt(items[i].Value)
		if err != nil {
			r.ReleaseItems(items)
			return nil, err
		}
		cp, err := core.Embed(a, asg)
		if err != nil {
			r.ReleaseItems(items)
			return nil, fmt.Errorf("registry: embedding copy for %q: %w", items[i].Buyer, err)
		}
		items[i].Circuit = cp
	}
	return items, nil
}

// IssueBatchValues is IssueBatch without the netlists: every buyer's
// fingerprint value is reserved (or re-read, for buyers already issued)
// atomically, but no copy is embedded — Circuit is nil on every item.
// Because issuance is deterministic per buyer, a recorded value alone is a
// complete acknowledgement: the copy it names can be materialized later,
// byte-identically, by Issue. Fleet-scale async jobs run on this path,
// paying the per-copy embed only when a buyer actually fetches.
func (r *Registry) IssueBatchValues(ctx context.Context, a *core.Analysis, buyers []string) ([]BatchItem, error) {
	if err := r.check(a); err != nil {
		return nil, err
	}
	if len(buyers) == 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	combos := a.Combinations()
	if combos.Sign() <= 0 || combos.Cmp(big.NewInt(1)) == 0 {
		return nil, fmt.Errorf("registry: design has no fingerprint capacity")
	}
	return r.reserveBatch(buyers, combos)
}

// reserveBatch records a value for every buyer under one write lock,
// rolling every new record back if any reservation fails.
func (r *Registry) reserveBatch(buyers []string, combos *big.Int) ([]BatchItem, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	items := make([]BatchItem, len(buyers))
	seen := make(map[string]bool, len(buyers))
	var added []string
	rollback := func() {
		for _, b := range added {
			r.deleteRecord(b)
		}
	}
	for i, buyer := range buyers {
		if buyer == "" {
			rollback()
			return nil, fmt.Errorf("registry: empty buyer name")
		}
		if seen[buyer] {
			rollback()
			return nil, fmt.Errorf("registry: duplicate buyer %q in batch", buyer)
		}
		seen[buyer] = true
		items[i].Buyer = buyer
		if prev, ok := r.Issued[buyer]; ok {
			v, ok2 := new(big.Int).SetString(prev, 10)
			if !ok2 {
				rollback()
				return nil, fmt.Errorf("registry: corrupt record for %q", buyer)
			}
			items[i].Value = v
			continue
		}
		v := r.deriveValue(buyer, combos)
		dec := v.String()
		idx := r.valueIndex()
		if other, ok := idx[dec]; ok {
			rollback()
			return nil, fmt.Errorf("registry: fingerprint collision between %q and %q", buyer, other)
		}
		r.Issued[buyer] = dec
		idx[dec] = buyer
		items[i].Value = v
		items[i].Fresh = true
		added = append(added, buyer)
	}
	return items, nil
}

// Adopt installs an externally persisted issuance record — the replicated
// store's WAL-replay and peer-catch-up path. Adopting a record identical to
// an existing one is a no-op; a different value for an already recorded
// buyer, a value colliding with another buyer's, or a non-decimal value is
// corruption and errors without mutating the registry. Because issuance is
// deterministic per (digest, buyer), adopted records are byte-identical to
// the ones local issuance would have derived.
func (r *Registry) Adopt(buyer, value string) error {
	if buyer == "" {
		return fmt.Errorf("registry: empty buyer name")
	}
	if _, ok := new(big.Int).SetString(value, 10); !ok {
		return fmt.Errorf("registry: adopting corrupt value for %q", buyer)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.Issued[buyer]; ok {
		if prev != value {
			return fmt.Errorf("registry: adopting conflicting record for %q", buyer)
		}
		return nil
	}
	idx := r.valueIndex()
	if other, ok := idx[value]; ok && other != buyer {
		return fmt.Errorf("registry: fingerprint collision between %q and %q", buyer, other)
	}
	r.Issued[buyer] = value
	idx[value] = buyer
	return nil
}

// ReleaseItems drops the records IssueBatch created (Fresh items only —
// pre-existing issuances are never touched). Callers use it when the step
// after minting fails, e.g. the durable registry save, so the failed batch
// leaves no trace.
func (r *Registry) ReleaseItems(items []BatchItem) {
	r.mu.Lock()
	for i := range items {
		if items[i].Fresh {
			r.deleteRecord(items[i].Buyer)
		}
	}
	r.mu.Unlock()
}

// Buyers returns the registered buyer names, sorted.
func (r *Registry) Buyers() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.Issued))
	for b := range r.Issued {
		out = append(out, b)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// NumIssued returns the number of recorded buyers.
func (r *Registry) NumIssued() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.Issued)
}

// Value returns the decimal fingerprint value recorded for buyer, or false.
func (r *Registry) Value(buyer string) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	v, ok := r.Issued[buyer]
	return v, ok
}

// TraceExact extracts the fingerprint of an untampered suspect copy and
// returns the buyer it was issued to.
func (r *Registry) TraceExact(a *core.Analysis, suspect *circuit.Circuit) (string, error) {
	if err := r.check(a); err != nil {
		return "", err
	}
	asg, err := core.Extract(a, suspect)
	if err != nil {
		return "", err
	}
	v, err := a.IntFromAssignment(asg)
	if err != nil {
		return "", err
	}
	dec := v.String()
	r.mu.RLock()
	defer r.mu.RUnlock()
	for buyer, val := range r.Issued {
		if val == dec {
			return buyer, nil
		}
	}
	return "", fmt.Errorf("registry: fingerprint %s matches no issued copy", dec)
}

// TraceScores scores every registered buyer against a possibly tampered
// suspect using the marking-assumption tracer of internal/attack.
func (r *Registry) TraceScores(a *core.Analysis, suspect *circuit.Circuit) ([]attack.Score, error) {
	if err := r.check(a); err != nil {
		return nil, err
	}
	tr := attack.NewTracer(a)
	for _, buyer := range r.Buyers() {
		rec, ok := r.Value(buyer)
		if !ok {
			// Racing caller failed its embed and released the record
			// between Buyers and here; skip it like Buyers never saw it.
			continue
		}
		v, ok := new(big.Int).SetString(rec, 10)
		if !ok {
			return nil, fmt.Errorf("registry: corrupt record for %q", buyer)
		}
		asg, err := a.AssignmentFromInt(v)
		if err != nil {
			return nil, err
		}
		tr.Register(buyer, asg)
	}
	return tr.TraceScores(suspect)
}

func (r *Registry) check(a *core.Analysis) error {
	if got := DesignDigest(a); got != r.Digest {
		return fmt.Errorf("registry: design digest mismatch (registry %s, analysis %s)", r.Digest, got)
	}
	return nil
}

// Save writes the registry as JSON. It snapshots the record map under the
// read lock, so a save racing concurrent Issue calls serialises a
// consistent (point-in-time) state. Durable callers (internal/serve) must
// write the output via temp file + fsync + rename, never truncate-in-place.
func (r *Registry) Save(w io.Writer) error {
	type wire struct {
		Design string            `json:"design"`
		Digest string            `json:"digest"`
		Issued map[string]string `json:"issued"`
	}
	snap := wire{Design: r.Design, Digest: r.Digest, Issued: map[string]string{}}
	r.mu.RLock()
	for b, v := range r.Issued {
		snap.Issued[b] = v
	}
	r.mu.RUnlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// Load reads a registry and validates it against the analysis.
func Load(rd io.Reader, a *core.Analysis) (*Registry, error) {
	var r Registry
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	if r.Issued == nil {
		r.Issued = map[string]string{}
	}
	if err := r.check(a); err != nil {
		return nil, err
	}
	return &r, nil
}
