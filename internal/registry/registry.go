// Package registry persists the IP vendor's issued-fingerprint records —
// the bookkeeping §III-E presumes ("the designer can compare the
// fingerprinted IP with the design ... to obtain the fingerprint" and then
// look up which buyer it was issued to). A Registry maps buyer names to
// fingerprint values (mixed-radix integers over the design's modification
// slots) and serialises to JSON, keyed by a digest of the design so a
// registry cannot accidentally be used with the wrong netlist.
package registry

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/big"
	"sort"

	"repro/internal/attack"
	"repro/internal/circuit"
	"repro/internal/core"
)

// Registry records issued fingerprints for one design.
type Registry struct {
	// Design is the circuit name (informational).
	Design string `json:"design"`
	// Digest fingerprints the analysed netlist structure; Load rejects a
	// registry whose digest does not match the analysis it is used with.
	Digest string `json:"digest"`
	// Issued maps buyer name → decimal fingerprint value.
	Issued map[string]string `json:"issued"`
}

// DesignDigest hashes the structural identity of the analysed design: the
// canonical node list plus the location/target/variant shape. Any change to
// the netlist or the analysis options changes the digest.
func DesignDigest(a *core.Analysis) string {
	h := sha256.New()
	io.WriteString(h, a.Circuit.String())
	for i := range a.Locations {
		loc := &a.Locations[i]
		fmt.Fprintf(h, "L%d:%d:%d:%d;", loc.Primary, loc.FFCRoot, loc.Trigger, len(loc.Targets))
		for j := range loc.Targets {
			fmt.Fprintf(h, "T%d:%d;", loc.Targets[j].Gate, len(loc.Targets[j].Variants))
		}
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// New creates an empty registry bound to the analysed design.
func New(a *core.Analysis) *Registry {
	return &Registry{
		Design: a.Circuit.Name,
		Digest: DesignDigest(a),
		Issued: map[string]string{},
	}
}

// Issue assigns the buyer a fresh fingerprint value derived
// deterministically from the buyer name (keyed hash reduced modulo the
// design's combination count), embeds it, and records it. Issuing the same
// buyer twice returns the same instance; two buyers colliding on a value is
// rejected (retry with a different name — astronomically unlikely beyond
// toy designs).
func (r *Registry) Issue(a *core.Analysis, buyer string) (*circuit.Circuit, *big.Int, error) {
	if err := r.check(a); err != nil {
		return nil, nil, err
	}
	if buyer == "" {
		return nil, nil, fmt.Errorf("registry: empty buyer name")
	}
	combos := a.Combinations()
	if combos.Sign() <= 0 || combos.Cmp(big.NewInt(1)) == 0 {
		return nil, nil, fmt.Errorf("registry: design has no fingerprint capacity")
	}
	var value *big.Int
	if prev, ok := r.Issued[buyer]; ok {
		v, ok2 := new(big.Int).SetString(prev, 10)
		if !ok2 {
			return nil, nil, fmt.Errorf("registry: corrupt record for %q", buyer)
		}
		value = v
	} else {
		sum := sha256.Sum256([]byte("odcfp-issue:" + r.Digest + ":" + buyer))
		value = new(big.Int).SetBytes(sum[:])
		value.Mod(value, combos)
		// Collision check against existing records.
		dec := value.String()
		for other, v := range r.Issued {
			if v == dec {
				return nil, nil, fmt.Errorf("registry: fingerprint collision between %q and %q", buyer, other)
			}
		}
		r.Issued[buyer] = dec
	}
	asg, err := a.AssignmentFromInt(value)
	if err != nil {
		return nil, nil, err
	}
	cp, err := core.Embed(a, asg)
	if err != nil {
		return nil, nil, err
	}
	return cp, value, nil
}

// Buyers returns the registered buyer names, sorted.
func (r *Registry) Buyers() []string {
	out := make([]string, 0, len(r.Issued))
	for b := range r.Issued {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}

// TraceExact extracts the fingerprint of an untampered suspect copy and
// returns the buyer it was issued to.
func (r *Registry) TraceExact(a *core.Analysis, suspect *circuit.Circuit) (string, error) {
	if err := r.check(a); err != nil {
		return "", err
	}
	asg, err := core.Extract(a, suspect)
	if err != nil {
		return "", err
	}
	v, err := a.IntFromAssignment(asg)
	if err != nil {
		return "", err
	}
	dec := v.String()
	for buyer, val := range r.Issued {
		if val == dec {
			return buyer, nil
		}
	}
	return "", fmt.Errorf("registry: fingerprint %s matches no issued copy", dec)
}

// TraceScores scores every registered buyer against a possibly tampered
// suspect using the marking-assumption tracer of internal/attack.
func (r *Registry) TraceScores(a *core.Analysis, suspect *circuit.Circuit) ([]attack.Score, error) {
	if err := r.check(a); err != nil {
		return nil, err
	}
	tr := attack.NewTracer(a)
	for _, buyer := range r.Buyers() {
		v, ok := new(big.Int).SetString(r.Issued[buyer], 10)
		if !ok {
			return nil, fmt.Errorf("registry: corrupt record for %q", buyer)
		}
		asg, err := a.AssignmentFromInt(v)
		if err != nil {
			return nil, err
		}
		tr.Register(buyer, asg)
	}
	return tr.TraceScores(suspect)
}

func (r *Registry) check(a *core.Analysis) error {
	if got := DesignDigest(a); got != r.Digest {
		return fmt.Errorf("registry: design digest mismatch (registry %s, analysis %s)", r.Digest, got)
	}
	return nil
}

// Save writes the registry as JSON.
func (r *Registry) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Load reads a registry and validates it against the analysis.
func Load(rd io.Reader, a *core.Analysis) (*Registry, error) {
	var r Registry
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	if r.Issued == nil {
		r.Issued = map[string]string{}
	}
	if err := r.check(a); err != nil {
		return nil, err
	}
	return &r, nil
}
