package verilog

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/sim"
)

func fig1(t *testing.T) *circuit.Circuit {
	t.Helper()
	c := circuit.New("fig1")
	a, _ := c.AddPI("A")
	b, _ := c.AddPI("B")
	d, _ := c.AddPI("C")
	e, _ := c.AddPI("D")
	x, _ := c.AddGate("X", logic.And, a, b)
	y, _ := c.AddGate("Y", logic.Or, d, e)
	f, _ := c.AddGate("F", logic.And, x, y)
	if err := c.AddPO("F", f); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestWriteContainsStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, fig1(t)); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, frag := range []string{"module fig1", "input A", "output F", "and g", "or g", "endmodule"} {
		if !strings.Contains(s, frag) {
			t.Errorf("output missing %q:\n%s", frag, s)
		}
	}
}

func TestRoundTripEquivalence(t *testing.T) {
	orig := fig1(t)
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	eq, mm, err := sim.EquivalentExhaustive(orig, back)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatalf("round trip not equivalent: %v", mm)
	}
	if back.Name != "fig1" || back.NumGates() != 3 {
		t.Errorf("shape changed: %s / %d gates", back.Name, back.NumGates())
	}
}

func TestPOAliasAndConstants(t *testing.T) {
	c := circuit.New("alias")
	a, _ := c.AddPI("a")
	one, _ := c.AddGate("tie1", logic.Const1)
	zero, _ := c.AddGate("tie0", logic.Const0)
	g, _ := c.AddGate("g", logic.Xor, a, one)
	h, _ := c.AddGate("h", logic.Or, g, zero)
	// PO named differently from its driver → alias assign.
	if err := c.AddPO("out", h); err != nil {
		t.Fatal(err)
	}
	// Second PO sharing the same driver.
	if err := c.AddPO("out_copy", h); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "assign tie1 = 1'b1;") || !strings.Contains(s, "assign tie0 = 1'b0;") {
		t.Errorf("constants not emitted:\n%s", s)
	}
	if !strings.Contains(s, "assign out = h;") {
		t.Errorf("PO alias not emitted:\n%s", s)
	}
	back, err := Parse(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	eq, mm, err := sim.EquivalentExhaustive(c, back)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatalf("alias round trip differs: %v", mm)
	}
}

func TestPOCollisionRejected(t *testing.T) {
	c := circuit.New("bad")
	a, _ := c.AddPI("a")
	g, _ := c.AddGate("g", logic.Inv, a)
	h, _ := c.AddGate("h", logic.Inv, g)
	// PO named "g" but driven by h: collides with existing node g.
	if err := c.AddPO("g", h); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, c); err == nil {
		t.Error("collision between PO name and unrelated node accepted")
	}
}

func TestBadIdentifierRejected(t *testing.T) {
	c := circuit.New("bad")
	a, _ := c.AddPI("a[0]")
	g, _ := c.AddGate("g", logic.Inv, a)
	if err := c.AddPO("o", g); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, c); err == nil {
		t.Error("bracketed identifier accepted by plain-identifier writer")
	}
}

func TestParseOutOfOrderDefinitions(t *testing.T) {
	// Gates referencing wires defined later in the file must still parse.
	src := `
module m (a, b, o);
  input a, b;
  output o;
  wire t1, t2;
  and g1 (o, t1, t2);
  not g2 (t1, a);
  nor g3 (t2, a, b);
endmodule
`
	c, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 3 {
		t.Errorf("gates = %d", c.NumGates())
	}
	out, err := sim.EvalOne(c, []bool{false, false})
	if err != nil {
		t.Fatal(err)
	}
	// a=0,b=0: t1=1, t2=1, o=1.
	if !out[0] {
		t.Error("functional mismatch after out-of-order parse")
	}
}

func TestParseInstanceNameOptional(t *testing.T) {
	src := "module m (a, o);\n input a;\n output o;\n not (o, a);\nendmodule\n"
	c, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 1 {
		t.Error("anonymous instance not parsed")
	}
}

func TestParseBufferAssign(t *testing.T) {
	src := `
module m (a, o);
  input a;
  output o;
  wire t;
  assign t = a;
  not g (o, t);
endmodule
`
	c, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	id, ok := c.Lookup("t")
	if !ok || c.Nodes[id].Kind != logic.Buf {
		t.Error("wire assign should become a BUF node")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no module":   "input a;\n",
		"bad name":    "module 1m (a);\nendmodule",
		"no endmod":   "module m (a, o);\n input a;\n output o;\n not (o, a);\n",
		"unknown stm": "module m (a, o);\n input a;\n output o;\n flipflop (o, a);\nendmodule",
		"cycle":       "module m (a, o);\n input a;\n output o;\n wire x, y;\n not (x, y);\n not (y, x);\n and (o, a, x);\nendmodule",
		"no driver":   "module m (a, o);\n input a;\n output o;\nendmodule",
		"bad assign":  "module m (a, o);\n input a;\n output o;\n assign o = 2'b10;\nendmodule",
		"short prim":  "module m (a, o);\n input a;\n output o;\n not (o);\nendmodule",
	}
	for name, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted invalid Verilog", name)
		}
	}
}

func TestWideGatesRoundTrip(t *testing.T) {
	c := circuit.New("wide")
	var pins []circuit.NodeID
	for _, n := range []string{"a", "b", "cc", "d"} {
		id, _ := c.AddPI(n)
		pins = append(pins, id)
	}
	g1, _ := c.AddGate("g1", logic.Nand, pins...)
	g2, _ := c.AddGate("g2", logic.Xnor, g1, pins[0])
	bufg, _ := c.AddGate("g3", logic.Buf, g2)
	if err := c.AddPO("g3", bufg); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	eq, mm, err := sim.EquivalentExhaustive(c, back)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatalf("wide round trip differs: %v", mm)
	}
}
