package verilog

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

// FuzzParse: the Verilog reader must never panic; accepted netlists must
// validate, serialise, and re-parse to an equivalent circuit.
func FuzzParse(f *testing.F) {
	f.Add("module m (a, o);\n input a;\n output o;\n not (o, a);\nendmodule\n")
	f.Add("module m (a, b, o);\n input a, b;\n output o;\n wire t;\n nand g1 (t, a, b);\n xor g2 (o, t, a);\nendmodule\n")
	f.Add("module m (a, o);\n input a;\n output o;\n assign o = a;\nendmodule\n")
	f.Add("module m (a, o);\n input a;\n output o;\n assign o = 1'b1;\nendmodule\n")
	f.Add("module m (o);\n output o;\nendmodule")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Parse(strings.NewReader(src))
		if err != nil {
			return
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("accepted circuit invalid: %v", err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, c); err != nil {
			return // e.g. PO-name collisions the writer legitimately rejects
		}
		back, err := Parse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("own output rejected: %v\n%s", err, buf.String())
		}
		if len(c.PIs) <= 16 {
			eq, mm, err := sim.EquivalentExhaustive(c, back)
			if err == nil && !eq {
				t.Fatalf("round trip changed function: %v", mm)
			}
		}
	})
}
