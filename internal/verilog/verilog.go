// Package verilog writes and reads structural gate-level Verilog netlists in
// the style ABC emits for mapped benchmarks: one module, input/output/wire
// declarations, Verilog primitive gate instantiations (and/or/nand/nor/xor/
// xnor/not/buf) in output-first port order, and constant/alias assigns.
// This is the exchange format of the paper's tool flow ("ABC can map a blif
// file to a Verilog netlist with the standard gates in the library"); the
// circuit modifier in internal/core consumes and produces this form via the
// circuit representation.
package verilog

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/circuit"
	"repro/internal/logic"
)

var kindToPrimitive = map[logic.Kind]string{
	logic.Buf:  "buf",
	logic.Inv:  "not",
	logic.And:  "and",
	logic.Nand: "nand",
	logic.Or:   "or",
	logic.Nor:  "nor",
	logic.Xor:  "xor",
	logic.Xnor: "xnor",
}

var primitiveToKind = map[string]logic.Kind{
	"buf":  logic.Buf,
	"not":  logic.Inv,
	"and":  logic.And,
	"nand": logic.Nand,
	"or":   logic.Or,
	"nor":  logic.Nor,
	"xor":  logic.Xor,
	"xnor": logic.Xnor,
}

// validIdent reports whether s is a plain Verilog identifier.
func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9' || r == '$':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// keyword set that cannot be used as identifiers.
var keywords = map[string]bool{
	"module": true, "endmodule": true, "input": true, "output": true,
	"wire": true, "assign": true, "buf": true, "not": true, "and": true,
	"nand": true, "or": true, "nor": true, "xor": true, "xnor": true,
}

func checkIdent(s string) error {
	if !validIdent(s) || keywords[s] {
		return fmt.Errorf("verilog: %q is not a plain identifier", s)
	}
	return nil
}

// Write emits circuit c as a structural Verilog module. Node and PO names
// must be plain identifiers; PO names must not collide with non-driver node
// names (the writer reuses the driver wire when names match and emits an
// alias assign otherwise).
func Write(w io.Writer, c *circuit.Circuit) error {
	bw := bufio.NewWriter(w)
	modName := c.Name
	if modName == "" || !validIdent(modName) {
		modName = "top"
	}
	// Gather port names.
	ports := make([]string, 0, len(c.PIs)+len(c.POs))
	for _, pi := range c.PIs {
		name := c.Nodes[pi].Name
		if err := checkIdent(name); err != nil {
			return err
		}
		ports = append(ports, name)
	}
	poAlias := make(map[string]string) // PO name -> driver name when differing
	for _, po := range c.POs {
		if err := checkIdent(po.Name); err != nil {
			return err
		}
		drv := c.Nodes[po.Driver].Name
		if po.Name != drv {
			if id, exists := c.Lookup(po.Name); exists && id != po.Driver {
				return fmt.Errorf("verilog: PO %q collides with unrelated node %q", po.Name, po.Name)
			}
			poAlias[po.Name] = drv
		}
		ports = append(ports, po.Name)
	}

	fmt.Fprintf(bw, "// circuit %s: %d PIs, %d POs, %d gates\n", c.Name, len(c.PIs), len(c.POs), c.NumGates())
	fmt.Fprintf(bw, "module %s (%s);\n", modName, strings.Join(ports, ", "))
	writeDecl(bw, "input", piNames(c))
	writeDecl(bw, "output", poNames(c))

	// Wires: every gate output that is not itself a PO name.
	isPOName := make(map[string]bool, len(c.POs))
	for _, po := range c.POs {
		isPOName[po.Name] = true
	}
	var wires []string
	for i := range c.Nodes {
		nd := &c.Nodes[i]
		if nd.IsPI || isPOName[nd.Name] {
			continue
		}
		if err := checkIdent(nd.Name); err != nil {
			return err
		}
		wires = append(wires, nd.Name)
	}
	writeDecl(bw, "wire", wires)

	// Gates in topological order for readability.
	order, err := c.TopoOrder()
	if err != nil {
		return err
	}
	gi := 0
	for _, id := range order {
		nd := &c.Nodes[id]
		if nd.IsPI {
			continue
		}
		switch nd.Kind {
		case logic.Const0:
			fmt.Fprintf(bw, "  assign %s = 1'b0;\n", nd.Name)
			continue
		case logic.Const1:
			fmt.Fprintf(bw, "  assign %s = 1'b1;\n", nd.Name)
			continue
		}
		prim, ok := kindToPrimitive[nd.Kind]
		if !ok {
			return fmt.Errorf("verilog: node %q: unsupported kind %v", nd.Name, nd.Kind)
		}
		args := make([]string, 0, len(nd.Fanin)+1)
		args = append(args, nd.Name)
		for _, f := range nd.Fanin {
			args = append(args, c.Nodes[f].Name)
		}
		fmt.Fprintf(bw, "  %s g%d (%s);\n", prim, gi, strings.Join(args, ", "))
		gi++
	}
	for _, po := range c.POs {
		if drv, aliased := poAlias[po.Name]; aliased {
			fmt.Fprintf(bw, "  assign %s = %s;\n", po.Name, drv)
		}
	}
	fmt.Fprintln(bw, "endmodule")
	return bw.Flush()
}

func piNames(c *circuit.Circuit) []string {
	out := make([]string, len(c.PIs))
	for i, pi := range c.PIs {
		out[i] = c.Nodes[pi].Name
	}
	return out
}

func poNames(c *circuit.Circuit) []string {
	out := make([]string, len(c.POs))
	for i, po := range c.POs {
		out[i] = po.Name
	}
	return out
}

func writeDecl(w io.Writer, kw string, names []string) {
	const perLine = 10
	for i := 0; i < len(names); i += perLine {
		end := i + perLine
		if end > len(names) {
			end = len(names)
		}
		fmt.Fprintf(w, "  %s %s;\n", kw, strings.Join(names[i:end], ", "))
	}
}

// Parse reads a structural Verilog module written in the subset produced by
// Write (and by ABC's mapped-netlist output with primitive gates).
func Parse(r io.Reader) (*circuit.Circuit, error) {
	toks, err := tokenize(r)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.module()
}

func tokenize(r io.Reader) ([]string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var toks []string
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		// Split punctuation into standalone tokens.
		var b strings.Builder
		for _, ch := range line {
			switch ch {
			case '(', ')', ',', ';', '=':
				b.WriteByte(' ')
				b.WriteRune(ch)
				b.WriteByte(' ')
			default:
				b.WriteRune(ch)
			}
		}
		toks = append(toks, strings.Fields(b.String())...)
	}
	return toks, sc.Err()
}

type parser struct {
	toks []string
	pos  int
}

func (p *parser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *parser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) expect(t string) error {
	if got := p.next(); got != t {
		return fmt.Errorf("verilog: expected %q, got %q (token %d)", t, got, p.pos-1)
	}
	return nil
}

// identList parses "a, b, c ;" (or terminated by ')').
func (p *parser) identList(terminator string) ([]string, error) {
	var out []string
	for {
		t := p.next()
		if t == "" {
			return nil, fmt.Errorf("verilog: unexpected EOF in list")
		}
		if t == terminator && len(out) == 0 {
			return out, nil
		}
		if !validIdent(t) {
			return nil, fmt.Errorf("verilog: bad identifier %q in list", t)
		}
		out = append(out, t)
		switch sep := p.next(); sep {
		case ",":
		case terminator:
			return out, nil
		default:
			return nil, fmt.Errorf("verilog: expected ',' or %q, got %q", terminator, sep)
		}
	}
}

type gateStmt struct {
	kind logic.Kind
	out  string
	in   []string
}

type assignStmt struct {
	lhs string
	rhs string // identifier, "1'b0" or "1'b1"
}

func (p *parser) module() (*circuit.Circuit, error) {
	if err := p.expect("module"); err != nil {
		return nil, err
	}
	name := p.next()
	if !validIdent(name) {
		return nil, fmt.Errorf("verilog: bad module name %q", name)
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	if _, err := p.identList(")"); err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}

	var inputs, outputs []string
	var gates []gateStmt
	var assigns []assignStmt
	wires := map[string]bool{}

	for {
		t := p.next()
		switch t {
		case "":
			return nil, fmt.Errorf("verilog: unexpected EOF (missing endmodule)")
		case "endmodule":
			return build(name, inputs, outputs, gates, assigns, wires)
		case "input":
			l, err := p.identList(";")
			if err != nil {
				return nil, err
			}
			inputs = append(inputs, l...)
		case "output":
			l, err := p.identList(";")
			if err != nil {
				return nil, err
			}
			outputs = append(outputs, l...)
		case "wire":
			l, err := p.identList(";")
			if err != nil {
				return nil, err
			}
			for _, w := range l {
				wires[w] = true
			}
		case "assign":
			lhs := p.next()
			if !validIdent(lhs) {
				return nil, fmt.Errorf("verilog: bad assign LHS %q", lhs)
			}
			if err := p.expect("="); err != nil {
				return nil, err
			}
			rhs := p.next()
			if err := p.expect(";"); err != nil {
				return nil, err
			}
			assigns = append(assigns, assignStmt{lhs, rhs})
		default:
			kind, ok := primitiveToKind[t]
			if !ok {
				return nil, fmt.Errorf("verilog: unsupported statement starting with %q", t)
			}
			// Optional instance name.
			if p.peek() != "(" {
				inst := p.next()
				if !validIdent(inst) {
					return nil, fmt.Errorf("verilog: bad instance name %q", inst)
				}
			}
			if err := p.expect("("); err != nil {
				return nil, err
			}
			args, err := p.identList(")")
			if err != nil {
				return nil, err
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
			if len(args) < 2 {
				return nil, fmt.Errorf("verilog: primitive %q needs output and inputs", t)
			}
			gates = append(gates, gateStmt{kind: kind, out: args[0], in: args[1:]})
		}
	}
}

func build(name string, inputs, outputs []string, gates []gateStmt, assigns []assignStmt, wires map[string]bool) (*circuit.Circuit, error) {
	c := circuit.New(name)
	for _, in := range inputs {
		if _, err := c.AddPI(in); err != nil {
			return nil, err
		}
	}
	isOutput := make(map[string]bool, len(outputs))
	for _, o := range outputs {
		isOutput[o] = true
	}
	// Separate assigns: constants and buffers create nodes; an assign onto
	// an output from an identifier is a PO alias (no node).
	type pendingGate struct {
		kind logic.Kind
		out  string
		in   []string
	}
	var pend []pendingGate
	aliases := map[string]string{}
	for _, a := range assigns {
		switch a.rhs {
		case "1'b0":
			pend = append(pend, pendingGate{kind: logic.Const0, out: a.lhs})
		case "1'b1":
			pend = append(pend, pendingGate{kind: logic.Const1, out: a.lhs})
		default:
			if !validIdent(a.rhs) {
				return nil, fmt.Errorf("verilog: unsupported assign RHS %q", a.rhs)
			}
			if isOutput[a.lhs] {
				aliases[a.lhs] = a.rhs
			} else {
				pend = append(pend, pendingGate{kind: logic.Buf, out: a.lhs, in: []string{a.rhs}})
			}
		}
	}
	for _, g := range gates {
		pend = append(pend, pendingGate{kind: g.kind, out: g.out, in: g.in})
	}
	// Topologically insert gates (inputs may be defined later in the file).
	remaining := pend
	for len(remaining) > 0 {
		progressed := false
		var defer2 []pendingGate
		for _, g := range remaining {
			ready := true
			for _, in := range g.in {
				if _, ok := c.Lookup(in); !ok {
					ready = false
					break
				}
			}
			if !ready {
				defer2 = append(defer2, g)
				continue
			}
			fanin := make([]circuit.NodeID, len(g.in))
			for i, in := range g.in {
				fanin[i] = c.MustLookup(in)
			}
			if _, err := c.AddGate(g.out, g.kind, fanin...); err != nil {
				return nil, err
			}
			progressed = true
		}
		if !progressed {
			return nil, fmt.Errorf("verilog: cyclic or dangling gate definitions (%d unresolved, first output %q)", len(defer2), defer2[0].out)
		}
		remaining = defer2
	}
	for _, o := range outputs {
		drvName := o
		if a, ok := aliases[o]; ok {
			drvName = a
		}
		drv, ok := c.Lookup(drvName)
		if !ok {
			return nil, fmt.Errorf("verilog: output %q has no driver", o)
		}
		if err := c.AddPO(o, drv); err != nil {
			return nil, err
		}
	}
	_ = wires // declarations are advisory in this subset
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}
