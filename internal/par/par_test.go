package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrdered(t *testing.T) {
	for _, j := range []int{0, 1, 2, 7, 64} {
		out, err := Map(100, j, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("j=%d: %v", j, err)
		}
		if len(out) != 100 {
			t.Fatalf("j=%d: %d results", j, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("j=%d: out[%d] = %d", j, i, v)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(0, 4, func(i int) (string, error) { return "x", nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("got %v, %v", out, err)
	}
}

// TestMapLowestIndexError asserts the determinism contract: no matter how
// scheduling interleaves, the reported error is the smallest failing
// index's, exactly what a serial loop would return.
func TestMapLowestIndexError(t *testing.T) {
	for _, j := range []int{1, 2, 8} {
		for rep := 0; rep < 20; rep++ {
			_, err := Map(32, j, func(i int) (int, error) {
				switch i {
				case 3, 7, 20:
					return 0, fmt.Errorf("fail %d", i)
				case 1:
					time.Sleep(time.Millisecond) // skew completion order
				}
				return i, nil
			})
			if err == nil || err.Error() != "fail 3" {
				t.Fatalf("j=%d rep=%d: got %v, want fail 3", j, rep, err)
			}
		}
	}
}

func TestMapStopsClaimingAfterError(t *testing.T) {
	var ran atomic.Int64
	_, err := Map(1000, 2, func(i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, errors.New("boom")
		}
		time.Sleep(100 * time.Microsecond)
		return i, nil
	})
	if err == nil {
		t.Fatal("no error")
	}
	if n := ran.Load(); n == 1000 {
		t.Log("all indices ran despite early error (legal but wasteful)")
	}
}

func TestMapBoundedConcurrency(t *testing.T) {
	const j = 3
	var cur, max atomic.Int64
	_, err := Map(50, j, func(i int) (int, error) {
		c := cur.Add(1)
		for {
			m := max.Load()
			if c <= m || max.CompareAndSwap(m, c) {
				break
			}
		}
		time.Sleep(200 * time.Microsecond)
		cur.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m := max.Load(); m > j {
		t.Fatalf("observed %d concurrent tasks, cap %d", m, j)
	}
}

func TestDo(t *testing.T) {
	var sum atomic.Int64
	if err := Do(10, 4, func(i int) error { sum.Add(int64(i)); return nil }); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 45 {
		t.Fatalf("sum %d", sum.Load())
	}
	if err := Do(5, 2, func(i int) error {
		if i == 2 {
			return errors.New("nope")
		}
		return nil
	}); err == nil || err.Error() != "nope" {
		t.Fatalf("got %v", err)
	}
}

func TestWorkers(t *testing.T) {
	if Workers(5) != 5 {
		t.Error("explicit count not honoured")
	}
	if Workers(0) != runtime.GOMAXPROCS(0) || Workers(-3) != runtime.GOMAXPROCS(0) {
		t.Error("default not GOMAXPROCS")
	}
}
