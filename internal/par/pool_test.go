package par

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolBound: with j=3, at most 3 tasks ever run at once, and all tasks
// run exactly once.
func TestPoolBound(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var running, peak, total atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := p.Run(context.Background(), func(context.Context) error {
				n := running.Add(1)
				for {
					cur := peak.Load()
					if n <= cur || peak.CompareAndSwap(cur, n) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				running.Add(-1)
				total.Add(1)
				return nil
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if total.Load() != 50 {
		t.Errorf("ran %d tasks, want 50", total.Load())
	}
	if peak.Load() > 3 {
		t.Errorf("peak concurrency %d exceeds bound 3", peak.Load())
	}
}

// TestPoolContextTimeout: a caller whose context expires while waiting for
// a slot gets ctx.Err and its task never runs.
func TestPoolContextTimeout(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	release := make(chan struct{})
	started := make(chan struct{})
	go p.Run(context.Background(), func(context.Context) error {
		close(started)
		<-release
		return nil
	})
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	ran := false
	err := p.Run(ctx, func(context.Context) error { ran = true; return nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want deadline exceeded", err)
	}
	if ran {
		t.Error("task ran despite admission timeout")
	}
	close(release)
}

// TestPoolCloseDrains: Close waits for in-flight work and rejects new work.
func TestPoolCloseDrains(t *testing.T) {
	p := NewPool(2)
	var done atomic.Bool
	started := make(chan struct{})
	go p.Run(context.Background(), func(context.Context) error {
		close(started)
		time.Sleep(20 * time.Millisecond)
		done.Store(true)
		return nil
	})
	<-started
	p.Close()
	if !done.Load() {
		t.Error("Close returned before in-flight task finished")
	}
	if err := p.Run(context.Background(), func(context.Context) error { return nil }); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("Run after Close = %v, want ErrPoolClosed", err)
	}
	p.Close() // idempotent
}

// TestPoolSkipsCancelledTask: a task whose context is already dead when the
// slot frees up never executes — the slot goes to live work instead.
func TestPoolSkipsCancelledTask(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := p.Run(ctx, func(context.Context) error { ran = true; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Error("task ran with an already-cancelled context")
	}
}

// TestPoolTaskSeesCallerContext: the context passed to Run reaches the task
// body, so deadlines propagate into the work.
func TestPoolTaskSeesCallerContext(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	type key struct{}
	ctx := context.WithValue(context.Background(), key{}, "v")
	err := p.Run(ctx, func(got context.Context) error {
		if got.Value(key{}) != "v" {
			t.Error("task context is not the caller's")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPoolWaiting: queue depth is observable while callers wait for a slot.
func TestPoolWaiting(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	release := make(chan struct{})
	started := make(chan struct{})
	go p.Run(context.Background(), func(context.Context) error {
		close(started)
		<-release
		return nil
	})
	<-started
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Run(context.Background(), func(context.Context) error { return nil })
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	for p.Waiting() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("Waiting() = %d, want 3", p.Waiting())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if p.Waiting() != 0 {
		t.Errorf("Waiting() = %d after drain, want 0", p.Waiting())
	}
}

// TestPoolPropagatesError: fn's error comes back to the caller unchanged.
func TestPoolPropagatesError(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	want := errors.New("boom")
	if err := p.Run(context.Background(), func(context.Context) error { return want }); !errors.Is(err, want) {
		t.Errorf("err = %v, want %v", err, want)
	}
}
