// Package par is the repository's parallel execution layer: a minimal
// bounded worker pool (pure stdlib sync) for fanning out independent,
// index-addressed tasks with two hard guarantees the experiment harness and
// the constraint heuristics rely on:
//
//  1. Ordered results — Map returns results positionally, so callers
//     aggregate in index order and floating-point sums are independent of
//     goroutine scheduling.
//  2. Deterministic errors — the error returned is always the one produced
//     by the smallest failing index, regardless of which worker observed a
//     failure first. This matches what a serial loop over the same indices
//     would report, so the error path of `-j 8` is byte-identical to `-j 1`.
//
// Indices are claimed in ascending order from a shared atomic counter; after
// any failure workers stop claiming new indices (work already claimed runs
// to completion). Because claims ascend, every index below the smallest
// failing one has already been claimed and finished successfully, so the
// smallest failing index is always executed and its error is always the one
// reported.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Observability (internal/obs). Batch shape is deterministic for a fixed
// workload and worker flag; the busy/wall nanosecond pair (worker
// utilization = busy/(wall*workers)) is wall-clock derived, so it is
// declared Nondet and only accumulated while tracing is enabled — the pool's
// fast path stays free of time.Now calls.
var (
	mBatches   = obs.NewCounter("par", "batches")
	mTasks     = obs.NewCounter("par", "tasks")
	hBatchSize = obs.NewHistogram("par", "batch_size")
	gWorkers   = obs.NewGauge("par", "workers_max")
	mBusyNS    = obs.NewCounter("par", "busy_ns", obs.Nondet())
	mWallNS    = obs.NewCounter("par", "wall_ns", obs.Nondet())
)

// Workers normalises a `-j`-style worker-count flag: values ≤ 0 mean "one
// worker per available CPU" (runtime.GOMAXPROCS(0)).
func Workers(j int) int {
	if j <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return j
}

// Map runs fn(i) for every i in [0, n) on up to j workers (j ≤ 0 means
// Workers(0)) and returns the results in index order. On failure it returns
// the error of the smallest failing index and a nil slice.
func Map[T any](n, j int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	j = Workers(j)
	if j > n {
		j = n
	}
	mBatches.Inc()
	mTasks.Add(int64(n))
	hBatchSize.Observe(int64(n))
	gWorkers.SetMax(int64(j))
	timed := obs.Enabled()
	var wall time.Time
	if timed {
		wall = time.Now()
	}
	if j == 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		if timed {
			d := int64(time.Since(wall))
			mBusyNS.Add(d)
			mWallNS.Add(d)
		}
		return out, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	next.Store(-1)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < j; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var t0 time.Time
			if timed {
				t0 = time.Now()
				defer func() { mBusyNS.Add(int64(time.Since(t0))) }()
			}
			for !failed.Load() {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				v, err := fn(i)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if timed {
		mWallNS.Add(int64(time.Since(wall)))
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Do is Map for side-effecting tasks without a result value.
func Do(n, j int, fn func(i int) error) error {
	_, err := Map(n, j, func(i int) (struct{}, error) { return struct{}{}, fn(i) })
	return err
}
