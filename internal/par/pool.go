package par

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/obs"
)

// Pool metrics. Task counts are workload-determined; the in-flight gauge
// and rejection counter depend on wall-clock timing and scheduling, so they
// are Nondet like the pool's busy-time accounting in Map.
var (
	mPoolTasks    = obs.NewCounter("par", "pool_tasks")
	mPoolRejected = obs.NewCounter("par", "pool_rejected", obs.Nondet())
	gPoolInFlight = obs.NewGauge("par", "pool_in_flight", obs.Nondet())
	gPoolWaiting  = obs.NewGauge("par", "pool_waiting", obs.Nondet())
	gPoolWorkers  = obs.NewGauge("par", "pool_workers")
)

// ErrPoolClosed is returned by Pool.Run after Close has been called.
var ErrPoolClosed = errors.New("par: pool closed")

// Pool is the long-lived counterpart to Map: a bounded executor for
// request-serving workloads (the fingerprinting daemon in internal/serve)
// where tasks arrive continuously instead of as one indexed batch. At most
// Workers tasks execute at any moment; excess callers wait for a slot or
// give up when their context is done. Tasks run on the caller's goroutine
// (caller-runs semantics), so a task's stack, panics and context plumbing
// behave exactly as if the caller had run it inline — the pool only
// enforces the concurrency bound.
//
// Close provides graceful drain: new Run calls are rejected with
// ErrPoolClosed, tasks already admitted (including those still waiting for
// a slot) run to completion, and Close returns once the pool is empty.
type Pool struct {
	sem     chan struct{}
	workers int
	waiting atomic.Int64

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// NewPool creates a pool executing at most j tasks concurrently (j ≤ 0
// means Workers(0), one per available CPU).
func NewPool(j int) *Pool {
	j = Workers(j)
	gPoolWorkers.SetMax(int64(j))
	return &Pool{sem: make(chan struct{}, j), workers: j}
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// InFlight returns the number of tasks currently executing (not counting
// callers still waiting for a slot).
func (p *Pool) InFlight() int { return len(p.sem) }

// Waiting returns the number of callers queued for a slot right now — the
// pool's queue depth, which the daemon's load shedding compares against its
// bound before admitting a request.
func (p *Pool) Waiting() int { return int(p.waiting.Load()) }

// Run executes fn as soon as a slot is free and returns its error. The
// task receives the caller's context so deadlines and disconnects propagate
// into the work itself. Run returns ctx.Err() if the context is done before
// a slot frees up (the daemon's per-request admission timeout) — or if it is
// already done once the slot is acquired, in which case fn never runs — and
// ErrPoolClosed after Close.
func (p *Pool) Run(ctx context.Context, fn func(ctx context.Context) error) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		mPoolRejected.Inc()
		return ErrPoolClosed
	}
	p.wg.Add(1)
	p.mu.Unlock()
	defer p.wg.Done()

	p.waiting.Add(1)
	gPoolWaiting.Add(1)
	if fault.Hit(fault.PoolSaturate) {
		// Chaos mode: behave as if no slot ever frees — the caller blocks
		// until its context is done, exactly like a saturated pool.
		<-ctx.Done()
		p.waiting.Add(-1)
		gPoolWaiting.Add(-1)
		mPoolRejected.Inc()
		return ctx.Err()
	}
	select {
	case p.sem <- struct{}{}:
		p.waiting.Add(-1)
		gPoolWaiting.Add(-1)
	case <-ctx.Done():
		p.waiting.Add(-1)
		gPoolWaiting.Add(-1)
		mPoolRejected.Inc()
		return ctx.Err()
	}
	defer func() { <-p.sem }()
	// A context that expired while we queued must not start work: the client
	// is gone, so burning the slot would only delay live requests.
	if err := ctx.Err(); err != nil {
		mPoolRejected.Inc()
		return err
	}
	mPoolTasks.Inc()
	gPoolInFlight.Add(1)
	defer gPoolInFlight.Add(-1)
	return fn(ctx)
}

// Close drains the pool: it rejects subsequent Run calls and blocks until
// every admitted task has finished. Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.wg.Wait()
}
