package benchfmt

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

// FuzzParse: the .bench reader must never panic; accepted circuits must
// validate and round-trip.
func FuzzParse(f *testing.F) {
	f.Add(sample)
	f.Add("INPUT(a)\nOUTPUT(q)\nq = NOT(a)\n")
	f.Add("INPUT(a)\nINPUT(b)\nOUTPUT(q)\nq = XNOR(a, b)\n")
	f.Add("# name\nINPUT(a)\nOUTPUT(a)\n")
	f.Add("INPUT(a)\nOUTPUT(q)\nq = VDD()\n")
	f.Add("q = DFF(a)\n")
	f.Fuzz(func(t *testing.T, src string) {
		c, err := Parse(strings.NewReader(src))
		if err != nil {
			return
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("accepted circuit invalid: %v", err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, c); err != nil {
			return
		}
		back, err := Parse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("own output rejected: %v\n%s", err, buf.String())
		}
		if len(c.PIs) <= 16 && len(c.PIs) == len(back.PIs) {
			eq, mm, err := sim.EquivalentExhaustive(c, back)
			if err == nil && !eq {
				t.Fatalf("round trip changed function: %v", mm)
			}
		}
	})
}
