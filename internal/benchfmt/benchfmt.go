// Package benchfmt reads and writes the ISCAS ".bench" netlist format, the
// native distribution format of the ISCAS'85 benchmark suite the paper
// evaluates on:
//
//	# comment
//	INPUT(a)
//	OUTPUT(f)
//	t = NAND(a, b)
//	f = NOT(t)
//
// Supported functions: AND, NAND, OR, NOR, XOR, XNOR, NOT, BUF/BUFF and the
// constants VDD/GND (as zero-argument pseudo-functions). Sequential
// elements (DFF) are rejected — the flow is combinational.
package benchfmt

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/circuit"
	"repro/internal/logic"
)

var nameToKind = map[string]logic.Kind{
	"AND":  logic.And,
	"NAND": logic.Nand,
	"OR":   logic.Or,
	"NOR":  logic.Nor,
	"XOR":  logic.Xor,
	"XNOR": logic.Xnor,
	"NOT":  logic.Inv,
	"INV":  logic.Inv,
	"BUF":  logic.Buf,
	"BUFF": logic.Buf,
	"VDD":  logic.Const1,
	"GND":  logic.Const0,
}

var kindToName = map[logic.Kind]string{
	logic.And:    "AND",
	logic.Nand:   "NAND",
	logic.Or:     "OR",
	logic.Nor:    "NOR",
	logic.Xor:    "XOR",
	logic.Xnor:   "XNOR",
	logic.Inv:    "NOT",
	logic.Buf:    "BUFF",
	logic.Const1: "VDD",
	logic.Const0: "GND",
}

// Parse reads a combinational .bench netlist. The circuit name is taken
// from the first comment line of the form "# name" if present, else "bench".
func Parse(r io.Reader) (*circuit.Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	name := "bench"
	sawName := false

	type gateDef struct {
		out  string
		kind logic.Kind
		in   []string
		line int
	}
	var inputs, outputs []string
	var gates []gateDef
	lineNo := 0

	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !sawName {
				if n := strings.TrimSpace(strings.TrimPrefix(line, "#")); n != "" {
					name = strings.Fields(n)[0]
					sawName = true
				}
			}
			continue
		}
		up := strings.ToUpper(line)
		switch {
		case strings.HasPrefix(up, "INPUT(") || strings.HasPrefix(up, "INPUT ("):
			sig, err := parenArg(line)
			if err != nil {
				return nil, fmt.Errorf("bench line %d: %w", lineNo, err)
			}
			inputs = append(inputs, sig)
		case strings.HasPrefix(up, "OUTPUT(") || strings.HasPrefix(up, "OUTPUT ("):
			sig, err := parenArg(line)
			if err != nil {
				return nil, fmt.Errorf("bench line %d: %w", lineNo, err)
			}
			outputs = append(outputs, sig)
		default:
			eq := strings.Index(line, "=")
			if eq < 0 {
				return nil, fmt.Errorf("bench line %d: expected assignment, got %q", lineNo, line)
			}
			out := strings.TrimSpace(line[:eq])
			rhs := strings.TrimSpace(line[eq+1:])
			open := strings.Index(rhs, "(")
			closeP := strings.LastIndex(rhs, ")")
			if open < 0 || closeP < open {
				return nil, fmt.Errorf("bench line %d: malformed function call %q", lineNo, rhs)
			}
			fn := strings.ToUpper(strings.TrimSpace(rhs[:open]))
			if fn == "DFF" || fn == "DFFSR" || fn == "LATCH" {
				return nil, fmt.Errorf("bench line %d: sequential element %s not supported", lineNo, fn)
			}
			kind, ok := nameToKind[fn]
			if !ok {
				return nil, fmt.Errorf("bench line %d: unknown function %q", lineNo, fn)
			}
			var in []string
			argStr := strings.TrimSpace(rhs[open+1 : closeP])
			if argStr != "" {
				for _, a := range strings.Split(argStr, ",") {
					a = strings.TrimSpace(a)
					if a == "" {
						return nil, fmt.Errorf("bench line %d: empty argument", lineNo)
					}
					in = append(in, a)
				}
			}
			gates = append(gates, gateDef{out: out, kind: kind, in: in, line: lineNo})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	c := circuit.New(name)
	for _, in := range inputs {
		if _, err := c.AddPI(in); err != nil {
			return nil, err
		}
	}
	// Gates may be declared in any order.
	remaining := gates
	for len(remaining) > 0 {
		progressed := false
		var deferred []gateDef
		for _, g := range remaining {
			ready := true
			for _, in := range g.in {
				if _, ok := c.Lookup(in); !ok {
					ready = false
					break
				}
			}
			if !ready {
				deferred = append(deferred, g)
				continue
			}
			fanin := make([]circuit.NodeID, len(g.in))
			for i, in := range g.in {
				fanin[i] = c.MustLookup(in)
			}
			if _, err := c.AddGate(g.out, g.kind, fanin...); err != nil {
				return nil, fmt.Errorf("bench line %d: %w", g.line, err)
			}
			progressed = true
		}
		if !progressed {
			return nil, fmt.Errorf("bench line %d: gate %q reads undefined or cyclic signals", deferred[0].line, deferred[0].out)
		}
		remaining = deferred
	}
	for _, out := range outputs {
		drv, ok := c.Lookup(out)
		if !ok {
			return nil, fmt.Errorf("bench: OUTPUT(%s) has no driver", out)
		}
		poName := out
		if c.IsPODriver(drv) {
			// .bench allows listing the same signal twice; disambiguate.
			poName = out + "_dup"
		}
		if err := c.AddPO(poName, drv); err != nil {
			return nil, err
		}
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

func parenArg(line string) (string, error) {
	open := strings.Index(line, "(")
	closeP := strings.LastIndex(line, ")")
	if open < 0 || closeP < open {
		return "", fmt.Errorf("malformed declaration %q", line)
	}
	sig := strings.TrimSpace(line[open+1 : closeP])
	if sig == "" {
		return "", fmt.Errorf("empty signal in %q", line)
	}
	return sig, nil
}

// Write emits the circuit in .bench form. POs whose name differs from the
// driver get a BUFF alias so OUTPUT() lines reference real signals.
func Write(w io.Writer, c *circuit.Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", c.Name)
	fmt.Fprintf(bw, "# %d inputs, %d outputs, %d gates\n", len(c.PIs), len(c.POs), c.NumGates())
	for _, pi := range c.PIs {
		fmt.Fprintf(bw, "INPUT(%s)\n", c.Nodes[pi].Name)
	}
	type alias struct{ po, drv string }
	var aliases []alias
	for _, po := range c.POs {
		drv := c.Nodes[po.Driver].Name
		if po.Name == drv {
			fmt.Fprintf(bw, "OUTPUT(%s)\n", po.Name)
			continue
		}
		if id, clash := c.Lookup(po.Name); clash && id != po.Driver {
			return fmt.Errorf("benchfmt: PO %q collides with an unrelated node", po.Name)
		}
		aliases = append(aliases, alias{po.Name, drv})
		fmt.Fprintf(bw, "OUTPUT(%s)\n", po.Name)
	}
	fmt.Fprintln(bw)
	order, err := c.TopoOrder()
	if err != nil {
		return err
	}
	for _, id := range order {
		nd := &c.Nodes[id]
		if nd.IsPI {
			continue
		}
		fn, ok := kindToName[nd.Kind]
		if !ok {
			return fmt.Errorf("benchfmt: node %q has unsupported kind %v", nd.Name, nd.Kind)
		}
		args := make([]string, len(nd.Fanin))
		for i, f := range nd.Fanin {
			args[i] = c.Nodes[f].Name
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", nd.Name, fn, strings.Join(args, ", "))
	}
	for _, a := range aliases {
		fmt.Fprintf(bw, "%s = BUFF(%s)\n", a.po, a.drv)
	}
	return bw.Flush()
}
