package benchfmt

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/sim"
)

const sample = `
# c17
# 5 inputs, 2 outputs
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)

OUTPUT(G22)
OUTPUT(G23)

G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
`

// TestParseC17 parses the classic ISCAS c17 netlist (typed from its public
// definition — six NAND2 gates).
func TestParseC17(t *testing.T) {
	c, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "c17" {
		t.Errorf("name = %q", c.Name)
	}
	if len(c.PIs) != 5 || len(c.POs) != 2 || c.NumGates() != 6 {
		t.Fatalf("shape: %d/%d/%d", len(c.PIs), len(c.POs), c.NumGates())
	}
	st := c.Stats()
	if st.ByKind[logic.Nand] != 6 {
		t.Errorf("kinds: %v", st.ByKind)
	}
	// Known c17 response: all inputs 0 → G11 = 1, G16 = NAND(0,1)=1,
	// G10 = 1, G19 = NAND(1,0)=1, G22 = NAND(1,1) = 0, G23 = 0.
	out, err := sim.EvalOne(c, []bool{false, false, false, false, false})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != false || out[1] != false {
		t.Errorf("c17(00000) = %v", out)
	}
	// All ones: G10=NAND(1,1)=0, G11=0, G16=NAND(1,0)=1, G19=NAND(0,1)=1,
	// G22=NAND(0,1)=1, G23=NAND(1,1)=0.
	out, err = sim.EvalOne(c, []bool{true, true, true, true, true})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != true || out[1] != false {
		t.Errorf("c17(11111) = %v", out)
	}
}

func TestRoundTrip(t *testing.T) {
	orig, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	eq, mm, err := sim.EquivalentExhaustive(orig, back)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatalf("round trip differs: %v", mm)
	}
}

func TestAllKindsRoundTrip(t *testing.T) {
	c := circuit.New("kinds")
	a, _ := c.AddPI("a")
	b, _ := c.AddPI("b")
	one, _ := c.AddGate("one", logic.Const1)
	zero, _ := c.AddGate("zero", logic.Const0)
	g1, _ := c.AddGate("g1", logic.And, a, b)
	g2, _ := c.AddGate("g2", logic.Or, g1, one)
	g3, _ := c.AddGate("g3", logic.Xor, g2, zero)
	g4, _ := c.AddGate("g4", logic.Xnor, g3, a)
	g5, _ := c.AddGate("g5", logic.Nor, g4, b)
	g6, _ := c.AddGate("g6", logic.Inv, g5)
	g7, _ := c.AddGate("g7", logic.Buf, g6)
	if err := c.AddPO("out", g7); err != nil { // alias PO
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	eq, mm, err := sim.EquivalentExhaustive(c, back)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatalf("differs: %v", mm)
	}
}

func TestSuiteThroughBench(t *testing.T) {
	// A real generated benchmark survives the .bench round trip.
	spec, err := bench.ByName("c432")
	if err != nil {
		t.Fatal(err)
	}
	c := spec.Build()
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	eq, _, err := sim.EquivalentRandom(c, back, 32, 1)
	if err != nil || !eq {
		t.Fatalf("suite circuit round trip failed: %v %v", eq, err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"dff":        "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n",
		"unknown fn": "INPUT(a)\nOUTPUT(q)\nq = FROB(a)\n",
		"no driver":  "INPUT(a)\nOUTPUT(q)\n",
		"malformed":  "INPUT(a)\nOUTPUT(q)\nq NAND(a, a)\n",
		"bad args":   "INPUT(a)\nOUTPUT(q)\nq = NAND(a, )\n",
		"undefined":  "INPUT(a)\nOUTPUT(q)\nq = NOT(zz)\n",
		"cycle":      "INPUT(a)\nOUTPUT(q)\nx = NOT(y)\ny = NOT(x)\nq = AND(a, x)\n",
		"empty decl": "INPUT()\nOUTPUT(q)\nq = NOT(a)\n",
		"arity":      "INPUT(a)\nOUTPUT(q)\nq = NAND(a)\n",
	}
	for name, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted invalid input", name)
		}
	}
}

func TestOutOfOrderDefinitions(t *testing.T) {
	src := `
# ooo
INPUT(a)
OUTPUT(q)
q = NOT(t)
t = BUFF(a)
`
	c, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	out, err := sim.EvalOne(c, []bool{true})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != false {
		t.Error("q should be NOT(a)")
	}
}
