package report

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
)

// TestBuilderDeterministicZeroing: under -deterministic every wall-clock
// field is zeroed and spans come back sorted by name, so two builds of the
// same run serialize identically.
func TestBuilderDeterministicZeroing(t *testing.T) {
	b := NewBuilder("test", true)
	sp := obs.Start("zeta")
	time.Sleep(time.Millisecond)
	sp.End()
	obs.Start("alpha").End()
	b.Stage("phase1", time.Now().Add(-time.Second))
	r := b.Finish()

	if r.Start != "" {
		t.Errorf("Start = %q, want empty", r.Start)
	}
	if r.Stages[0].WallMS != 0 {
		t.Errorf("stage wall = %v, want 0", r.Stages[0].WallMS)
	}
	if len(r.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(r.Spans))
	}
	if r.Spans[0].Name != "alpha" || r.Spans[1].Name != "zeta" {
		t.Errorf("deterministic spans not name-sorted: %+v", r.Spans)
	}
	for _, s := range r.Spans {
		if s.StartUS != 0 || s.DurUS != 0 {
			t.Errorf("span %s has non-zero times: %+v", s.Name, s)
		}
	}
	for _, m := range r.Metrics {
		if m.Nondet && (m.Value != 0 || m.Count != 0) {
			t.Errorf("Nondet metric %s not zeroed: %+v", m.Name, m)
		}
	}
}

// TestBuilderLive: without -deterministic, spans carry real durations and
// the report is stamped.
func TestBuilderLive(t *testing.T) {
	b := NewBuilder("test", false)
	sp := obs.Start("work")
	time.Sleep(2 * time.Millisecond)
	sp.End()
	start := time.Now()
	time.Sleep(time.Millisecond)
	b.Stage("phase", start)
	r := b.Finish()
	if r.Start == "" {
		t.Error("live report missing Start timestamp")
	}
	if r.Stages[0].WallMS <= 0 {
		t.Errorf("stage wall = %v, want > 0", r.Stages[0].WallMS)
	}
	if len(r.Spans) != 1 || r.Spans[0].DurUS <= 0 {
		t.Errorf("span not recorded with duration: %+v", r.Spans)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	b := NewBuilder("experiments", true)
	b.Tables().Table2 = []experiments.Table2Row{{Name: "c880", Gates: 304, Locations: 82}}
	b.SetVerify(VerifySummary{Circuit: "c5315", Copies: 64, SessionSecs: 1.5, VerdictsMatch: true})
	r := b.Finish()

	path := filepath.Join(t.TempDir(), "r.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tool != "experiments" || got.Schema != Schema {
		t.Errorf("round trip lost identity: %+v", got)
	}
	if len(got.Tables.Table2) != 1 || got.Tables.Table2[0].Name != "c880" {
		t.Errorf("round trip lost tables: %+v", got.Tables)
	}
	if got.Verify == nil || got.Verify.SessionSecs != 0 {
		t.Errorf("deterministic verify durations not zeroed: %+v", got.Verify)
	}
}

func TestReadFileRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"schema":"other/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("want schema error, got nil")
	}
}

// TestExampleManifest keeps the committed example in sync with the schema:
// it must parse and render the sections DESIGN.md §8 documents.
func TestExampleManifest(t *testing.T) {
	r, err := ReadFile("testdata/runreport.example.json")
	if err != nil {
		t.Fatal(err)
	}
	md := Render(r)
	for _, frag := range []string{"# Run report: experiments", "Table II", "c432", "## Metrics", "## Spans"} {
		if !strings.Contains(md, frag) {
			t.Errorf("rendered example missing %q", frag)
		}
	}
}

// TestRenderAggregatesSpans: repeated spans of one name fold into one row.
func TestRenderAggregatesSpans(t *testing.T) {
	r := &RunReport{
		Schema: Schema, Tool: "test",
		Spans: []Span{{Name: "core.embed", DurUS: 150}, {Name: "core.embed", DurUS: 250}},
	}
	md := Render(r)
	if !strings.Contains(md, "| core.embed | 2 | 0.4 |") {
		t.Errorf("span aggregation missing:\n%s", md)
	}
}
