// Package report defines the machine-readable manifest (RunReport) that
// cmd/experiments and cmd/benchverify emit with -report, and renders
// manifests back into the Markdown sections recorded in EXPERIMENTS.md.
//
// A manifest captures everything needed to audit a run after the fact:
// the tool and its flags, build identity (git revision, Go version), wall
// times per stage and per span (the per-circuit timings come from the
// internal/obs spans the experiment sweeps open around each circuit), the
// full internal/obs metrics snapshot, the measured table rows themselves,
// and — for benchverify — the equivalence verdicts.
//
// Two invariants matter:
//
//  1. Emitting a manifest never perturbs the run: stdout stays
//     byte-identical with and without -report (enforced by the golden test
//     in cmd/experiments).
//  2. Under -deterministic every wall-clock-derived field (timestamps,
//     durations, Nondet-marked metrics) is zeroed, so two runs with the
//     same flags produce byte-identical manifests — the basis for golden
//     manifest testing.
//
// Rendering reuses the experiments.Format* functions, so a rendered table
// row is byte-for-byte the row a live run prints (and the row committed in
// EXPERIMENTS.md).
package report

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
)

// Schema identifies the manifest layout; bump on incompatible change.
const Schema = "odcfp.runreport/v1"

// RunReport is the manifest. All duration fields are zero when
// Deterministic is set.
type RunReport struct {
	Schema        string `json:"schema"`
	Tool          string `json:"tool"`
	Deterministic bool   `json:"deterministic"`
	GitRev        string `json:"git_rev,omitempty"`
	GoVersion     string `json:"go_version,omitempty"`
	// Start is the run's RFC3339 start time; empty under -deterministic.
	Start string `json:"start,omitempty"`
	// Flags records every CLI flag with its effective value.
	Flags map[string]string `json:"flags,omitempty"`
	// Stages are the tool's coarse phases in execution order.
	Stages []Stage `json:"stages,omitempty"`
	// Metrics is the internal/obs snapshot at the end of the run, sorted
	// by name; Nondet metrics are zeroed under -deterministic.
	Metrics []obs.MetricSnapshot `json:"metrics,omitempty"`
	// Spans are the traced regions (session builds, per-circuit cells of
	// the experiment sweeps, ...). Sorted by start time, or by name with
	// zeroed times under -deterministic.
	Spans []Span `json:"spans,omitempty"`
	// Tables holds the measured rows behind the rendered tables.
	Tables *Tables `json:"tables,omitempty"`
	// Verify is benchverify's verdict summary.
	Verify *VerifySummary `json:"verify,omitempty"`
}

// Stage is one coarse phase of a run with its wall time.
type Stage struct {
	Name   string  `json:"name"`
	WallMS float64 `json:"wall_ms"`
}

// Span is the JSON form of an obs.SpanRecord; times are microseconds
// relative to the run start.
type Span struct {
	Name    string `json:"name"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
	Depth   int    `json:"depth"`
}

// Tables carries the measured experiment rows. Exactly the sections the
// run produced are non-nil.
type Tables struct {
	Table2     []experiments.Table2Row `json:"table2,omitempty"`
	Table3     []experiments.Table3Row `json:"table3,omitempty"`
	Fig7       *experiments.Fig7Series `json:"fig7,omitempty"`
	E7         []experiments.E7Row     `json:"e7,omitempty"`
	E7Budget   float64                 `json:"e7_budget,omitempty"`
	E14Circuit string                  `json:"e14_circuit,omitempty"`
	E14        []experiments.E14Point  `json:"e14,omitempty"`
}

// VerifySummary is benchverify's outcome: N copies checked through the
// incremental session and the one-shot baseline, and whether they agreed.
type VerifySummary struct {
	Circuit       string  `json:"circuit"`
	Gates         int     `json:"gates"`
	Copies        int     `json:"copies"`
	SessionSecs   float64 `json:"session_secs"`
	ColdSecs      float64 `json:"cold_secs"`
	Speedup       float64 `json:"speedup"`
	VerdictsMatch bool    `json:"verdicts_match"`
	AllEquivalent bool    `json:"all_equivalent"`
}

// Builder accumulates a RunReport over the course of a CLI run. Creating
// one resets and enables the internal/obs sinks; Finish snapshots them.
type Builder struct {
	r  RunReport
	t0 time.Time
}

// NewBuilder starts a manifest for tool. It resets all obs metrics and
// turns span tracing on, so the manifest covers exactly this run.
func NewBuilder(tool string, deterministic bool) *Builder {
	obs.Reset()
	obs.Enable(true)
	b := &Builder{t0: time.Now()}
	b.r.Schema = Schema
	b.r.Tool = tool
	b.r.Deterministic = deterministic
	b.r.GitRev = vcsRevision()
	b.r.GoVersion = runtime.Version()
	if !deterministic {
		b.r.Start = b.t0.UTC().Format(time.RFC3339)
	}
	return b
}

// vcsRevision returns the VCS revision stamped into the binary, if any.
// go test / go run builds are typically unstamped; the field is then
// omitted, which is itself deterministic.
func vcsRevision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	for _, s := range info.Settings {
		if s.Key == "vcs.revision" {
			return s.Value
		}
	}
	return ""
}

// Flags records every flag of fs (set or defaulted) with its effective
// value, in lexicographic order.
func (b *Builder) Flags(fs *flag.FlagSet) {
	b.r.Flags = make(map[string]string)
	fs.VisitAll(func(f *flag.Flag) { b.r.Flags[f.Name] = f.Value.String() })
}

// Stage appends a phase that began at start and ends now.
func (b *Builder) Stage(name string, start time.Time) {
	st := Stage{Name: name}
	if !b.r.Deterministic {
		st.WallMS = float64(time.Since(start).Microseconds()) / 1e3
	}
	b.r.Stages = append(b.r.Stages, st)
}

// Tables returns the manifest's table container, allocating it on first use.
func (b *Builder) Tables() *Tables {
	if b.r.Tables == nil {
		b.r.Tables = &Tables{}
	}
	return b.r.Tables
}

// SetVerify attaches benchverify's summary; durations are zeroed under
// -deterministic.
func (b *Builder) SetVerify(v VerifySummary) {
	if b.r.Deterministic {
		v.SessionSecs, v.ColdSecs, v.Speedup = 0, 0, 0
	}
	b.r.Verify = &v
}

// Finish snapshots the obs metrics and spans into the manifest and returns
// it. Call once, after all stages completed.
func (b *Builder) Finish() *RunReport {
	b.r.Metrics = obs.Snapshot(b.r.Deterministic)
	recs := obs.DrainSpans()
	spans := make([]Span, 0, len(recs))
	for _, rec := range recs {
		sp := Span{Name: rec.Name, Depth: rec.Depth}
		if !b.r.Deterministic {
			sp.StartUS = rec.Start.Sub(b.t0).Microseconds()
			sp.DurUS = rec.Dur.Microseconds()
		}
		spans = append(spans, sp)
	}
	if b.r.Deterministic {
		// Start times are zeroed, so re-sort into a scheduling-independent
		// order: by name, then depth.
		sort.Slice(spans, func(i, j int) bool {
			if spans[i].Name != spans[j].Name {
				return spans[i].Name < spans[j].Name
			}
			return spans[i].Depth < spans[j].Depth
		})
	}
	b.r.Spans = spans
	return &b.r
}

// WriteFile marshals the manifest as indented JSON to path.
func (r *RunReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads and validates a manifest.
func ReadFile(path string) (*RunReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r RunReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("report: %s: %w", path, err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("report: %s: schema %q, want %q", path, r.Schema, Schema)
	}
	return &r, nil
}
