package report

import (
	"fmt"
	"strings"

	"repro/internal/experiments"
	"repro/internal/obs"
)

// Render turns a manifest into Markdown: one heading per table with the
// aligned text table in a fenced code block, then the run's stages, span
// summary and metrics. Table bodies come from the same experiments.Format*
// functions the CLI prints with, so a rendered row is byte-identical to
// the corresponding row in EXPERIMENTS.md — the tables there are
// regenerated with this renderer, never edited by hand.
func Render(r *RunReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Run report: %s\n\n", r.Tool)
	fmt.Fprintf(&b, "- schema: `%s`\n", r.Schema)
	if r.GitRev != "" {
		fmt.Fprintf(&b, "- git: `%s`\n", r.GitRev)
	}
	if r.GoVersion != "" {
		fmt.Fprintf(&b, "- go: `%s`\n", r.GoVersion)
	}
	if r.Start != "" {
		fmt.Fprintf(&b, "- start: %s\n", r.Start)
	}
	if r.Deterministic {
		b.WriteString("- deterministic: all wall-clock fields zeroed\n")
	}
	if len(r.Flags) > 0 {
		b.WriteString("- flags:")
		for _, name := range sortedKeys(r.Flags) {
			fmt.Fprintf(&b, " `-%s=%s`", name, r.Flags[name])
		}
		b.WriteString("\n")
	}

	if t := r.Tables; t != nil {
		if len(t.Table2) > 0 {
			section(&b, "Table II: full fingerprinting (measured vs paper)",
				experiments.FormatTable2(t.Table2))
		}
		if len(t.Table3) > 0 {
			section(&b, "Table III: reactive delay-constrained heuristic (averages, measured vs paper)",
				experiments.FormatTable3(t.Table3))
		}
		if t.Fig7 != nil {
			section(&b, "Fig. 7: fingerprint sizes before/after delay constraints",
				experiments.FormatFig7(t.Fig7))
		}
		if len(t.E7) > 0 {
			section(&b, "E7 (extension): proactive vs reactive heuristic",
				experiments.FormatE7(t.E7, t.E7Budget))
		}
		if len(t.E14) > 0 {
			section(&b, "E14 (extension): tracing robustness vs tampering",
				experiments.FormatE14(t.E14Circuit, t.E14))
		}
	}

	if v := r.Verify; v != nil {
		fmt.Fprintf(&b, "\n## Verification baseline\n\n")
		fmt.Fprintf(&b, "| circuit | gates | copies | session (s) | cold (s) | speedup | verdicts match | all equivalent |\n")
		fmt.Fprintf(&b, "|---|---|---|---|---|---|---|---|\n")
		fmt.Fprintf(&b, "| %s | %d | %d | %.2f | %.2f | %.1f | %v | %v |\n",
			v.Circuit, v.Gates, v.Copies, v.SessionSecs, v.ColdSecs, v.Speedup,
			v.VerdictsMatch, v.AllEquivalent)
	}

	if len(r.Stages) > 0 {
		b.WriteString("\n## Stages\n\n| stage | wall (ms) |\n|---|---|\n")
		for _, st := range r.Stages {
			fmt.Fprintf(&b, "| %s | %.1f |\n", st.Name, st.WallMS)
		}
	}

	if len(r.Spans) > 0 {
		b.WriteString("\n## Spans\n\n| span | count | total (ms) |\n|---|---|---|\n")
		for _, agg := range aggregateSpans(r.Spans) {
			fmt.Fprintf(&b, "| %s | %d | %.1f |\n", agg.name, agg.count, float64(agg.durUS)/1e3)
		}
	}

	if len(r.Metrics) > 0 {
		b.WriteString("\n## Metrics\n\n| metric | kind | value |\n|---|---|---|\n")
		for _, m := range r.Metrics {
			fmt.Fprintf(&b, "| %s | %s | %s |\n", m.Name, m.Kind, metricValue(m))
		}
	}
	return b.String()
}

func section(b *strings.Builder, title, body string) {
	fmt.Fprintf(b, "\n## %s\n\n```\n%s```\n", title, body)
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ { // insertion sort; flag sets are tiny
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

type spanAgg struct {
	name  string
	count int
	durUS int64
}

// aggregateSpans folds raw spans into per-name totals, preserving first-seen
// order (which is start order for live manifests, name order for
// deterministic ones).
func aggregateSpans(spans []Span) []spanAgg {
	idx := make(map[string]int)
	var out []spanAgg
	for _, s := range spans {
		i, ok := idx[s.Name]
		if !ok {
			i = len(out)
			idx[s.Name] = i
			out = append(out, spanAgg{name: s.Name})
		}
		out[i].count++
		out[i].durUS += s.DurUS
	}
	return out
}

func metricValue(m obs.MetricSnapshot) string {
	if m.Kind == obs.KindHistogram {
		return fmt.Sprintf("n=%d, buckets=%v", m.Count, m.Buckets)
	}
	return fmt.Sprintf("%d", m.Value)
}
