package registrystore

// The self-healing WAL scrubber. Open-time recovery (wal.go) only inspects
// a segment once, when the process starts; latent corruption — a bit flip
// from failing media, a truncated file, a mangled header — that lands while
// the daemon is up would otherwise sit undetected until the next restart,
// and undetected is exactly how a registry loses the issuance record it
// exists to keep. Scrub re-walks every segment's disk bytes, re-verifying
// the header and every CRC frame against the in-memory replay (which is
// authoritative at runtime: memory is only ever populated from acknowledged
// appends). A segment that fails verification is quarantined to
// <segment>.corrupt and rebuilt in place from the union of the local
// in-memory records and whatever the replica peers return, so a scrubbed
// node converges back to the acknowledged record set without operator
// intervention (DESIGN.md §13).

import (
	"bytes"
	"os"
	"sort"
)

// ScrubReport summarises one scrub pass over a WAL.
type ScrubReport struct {
	// Segments is how many segments were examined.
	Segments int `json:"segments"`
	// Busy counts segments skipped because a group commit was in flight;
	// they are re-examined on the next pass.
	Busy int `json:"busy"`
	// Corrupt counts segments whose disk bytes failed verification.
	Corrupt int `json:"corrupt"`
	// Repaired counts corrupt segments successfully quarantined + rebuilt.
	Repaired int `json:"repaired"`
	// Restored counts records the rebuilt files hold that their damaged
	// predecessors had lost.
	Restored int `json:"restored"`
	// Errors counts segments whose repair itself failed (retried next pass).
	Errors int `json:"errors"`
}

// Scrub verifies every segment's disk bytes and rebuilds the ones that fail.
// fetch, when non-nil, returns the peers' record union for a digest so a
// rebuild can also restore records the local file lost entirely; fetch may
// return nil. Scrub is safe to run concurrently with appends: a segment
// with a commit in flight is skipped, not blocked.
func (w *WAL) Scrub(fetch func(digest string) []Record) ScrubReport {
	var rep ScrubReport
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return rep
	}
	segs := make(map[string]*segment, len(w.segments))
	for d, s := range w.segments {
		segs[d] = s
	}
	w.mu.Unlock()

	mScrubRuns.Inc()
	digests := make([]string, 0, len(segs))
	for d := range segs {
		digests = append(digests, d)
	}
	sort.Strings(digests)
	for _, digest := range digests {
		w.scrubSegment(segs[digest], fetch, &rep)
	}
	return rep
}

// scrubSegment verifies one segment under its lock, rebuilding on mismatch.
func (w *WAL) scrubSegment(seg *segment, fetch func(string) []Record, rep *ScrubReport) {
	seg.mu.Lock()
	defer seg.mu.Unlock()
	if seg.broken != nil {
		return
	}
	rep.Segments++
	mScrubSegments.Inc()
	if seg.flushing || len(seg.batches) > 0 || len(seg.pending) > 0 {
		// A commit is in flight; the file is mid-write by design. Skip —
		// the next pass sees it quiescent.
		rep.Busy++
		return
	}
	data, rerr := os.ReadFile(seg.path)
	intact := 0
	if rerr == nil {
		var clean bool
		clean, intact = segmentClean(data, seg)
		if clean {
			return
		}
	}
	// rerr != nil means the file vanished or is unreadable — e.g. a crash
	// between rebuild's two renames left only the quarantined copy. Treat
	// exactly like corruption: rebuild from memory (+ peers).
	rep.Corrupt++
	mScrubCorrupt.Inc()

	recs := seg.recs
	if fetch != nil {
		recs = mergeRecords(seg.recs, fetch(seg.digest))
	}
	nf, size, err := rebuildSegmentFile(seg.path, seg.digest, recs)
	if err != nil {
		// The old handle still points at the pre-rebuild inode, so appends
		// continue; the next pass retries the repair.
		rep.Errors++
		return
	}
	seg.f.Close()
	seg.f, seg.size = nf, size
	seg.recs = recs
	seg.byBuyer = make(map[string]string, len(recs))
	for _, rec := range recs {
		seg.byBuyer[rec.Buyer] = rec.Value
	}
	rep.Repaired++
	mScrubRepaired.Inc()
	if n := len(recs) - intact; n > 0 {
		rep.Restored += n
		mScrubRestored.Add(int64(n))
	}
}

// segmentClean reports whether the segment's disk bytes byte-exactly encode
// its in-memory state, plus how many leading records still decode intact.
func segmentClean(data []byte, seg *segment) (clean bool, intact int) {
	hdr := segmentHeader(seg.digest)
	if len(data) < walHeaderSize || !bytes.Equal(data[:walHeaderSize], hdr) {
		return false, 0
	}
	off := int64(walHeaderSize)
	for intact < len(seg.recs) {
		rec, next, ok := decodeFrame(data, off, uint64(intact))
		if !ok || rec != seg.recs[intact] {
			return false, intact
		}
		intact++
		off = next
	}
	// Every in-memory record decoded; the file must end exactly there.
	return off == seg.size && int64(len(data)) == seg.size, intact
}

// mergeRecords unions fetched peer records into the local list, preserving
// local order (so a node whose memory is complete rebuilds byte-identically)
// and skipping conflicts — the local acknowledged state wins.
func mergeRecords(local, fetched []Record) []Record {
	if len(fetched) == 0 {
		return local
	}
	out := append([]Record(nil), local...)
	have := make(map[string]bool, len(local))
	for _, rec := range local {
		have[rec.Buyer] = true
	}
	for _, rec := range fetched {
		if !have[rec.Buyer] {
			out = append(out, rec)
			have[rec.Buyer] = true
		}
	}
	return out
}
