package registrystore

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// ringVnodes is how many virtual points each node claims on the hash
// circle. 64 keeps the expected per-node share within a few percent of
// 1/N for the small replica sets odcfpd clusters run (3–8 nodes).
const ringVnodes = 64

// Ring is a consistent-hash ring over a replica set: it maps a design
// digest to a stable preference order of nodes, the first being the
// design's leader. Every node builds the ring from the same peer list, so
// all replicas agree on each design's leader without coordination; when a
// node is unreachable its successor in the order takes over (the caller
// decides liveness — the ring is a pure function).
type Ring struct {
	points []ringPoint
	nodes  []string
}

type ringPoint struct {
	hash uint64
	node int // index into nodes
}

// NewRing builds a ring over the node names. Order and duplicates in the
// input do not matter: names are deduplicated and the ring is a pure
// function of the resulting set.
func NewRing(nodes []string) *Ring {
	seen := make(map[string]bool, len(nodes))
	r := &Ring{}
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
	}
	sort.Strings(r.nodes)
	for i, n := range r.nodes {
		for v := 0; v < ringVnodes; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(n, v), node: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].node < r.points[b].node
	})
	return r
}

// ringHash places one virtual point: a truncated SHA-256 of the node name
// and vnode ordinal (v < 0 hashes a bare key for lookups).
func ringHash(key string, v int) uint64 {
	h := sha256.New()
	h.Write([]byte("odcfp-ring:"))
	h.Write([]byte(key))
	if v >= 0 {
		var buf [4]byte
		binary.BigEndian.PutUint32(buf[:], uint32(v))
		h.Write(buf[:])
	}
	return binary.BigEndian.Uint64(h.Sum(nil))
}

// Nodes returns the ring's node set, sorted.
func (r *Ring) Nodes() []string {
	return append([]string(nil), r.nodes...)
}

// Order returns every node in the key's preference order: the node owning
// the first ring point at or after the key's hash leads, and each later
// entry is the next distinct node walking clockwise. Callers take the first
// live entry as the key's effective leader.
func (r *Ring) Order(key string) []string {
	if len(r.nodes) == 0 {
		return nil
	}
	kh := ringHash(key, -1)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= kh })
	out := make([]string, 0, len(r.nodes))
	taken := make([]bool, len(r.nodes))
	for i := 0; i < len(r.points) && len(out) < len(r.nodes); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !taken[p.node] {
			taken[p.node] = true
			out = append(out, r.nodes[p.node])
		}
	}
	return out
}

// Leader returns the key's first-preference node.
func (r *Ring) Leader(key string) string {
	o := r.Order(key)
	if len(o) == 0 {
		return ""
	}
	return o[0]
}
