package registrystore

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/registry"
)

// defaultAckTimeout bounds one peer replication attempt. Stragglers keep
// replicating in the background under this deadline after the quorum ack.
const defaultAckTimeout = 5 * time.Second

// Transport carries replication traffic to one peer node. The serving
// layer implements it over the cluster HTTP endpoints; tests implement it
// in-process.
type Transport interface {
	// Replicate delivers recs for the design to node, telling it the
	// sender's committed record total, and returns the peer's own total
	// after it has durably appended. A peer total below the sender's means
	// the peer lacks records the sender holds (it was down or restarted);
	// the sender responds by re-sending its full record list. A peer total
	// above means the sender is behind and should Fetch.
	Replicate(ctx context.Context, node, digest string, recs []Record, total uint64) (peerTotal uint64, err error)

	// Fetch returns the peer's full committed record list for the design.
	Fetch(ctx context.Context, node, digest string) ([]Record, error)
}

// ReplicatedConfig configures a replicated store node.
type ReplicatedConfig struct {
	// Dir is the WAL directory (one segment file per design digest).
	Dir string
	// Self is this node's id; it must appear in Nodes.
	Self string
	// Nodes is the full replica set, self included.
	Nodes []string
	// W is the write quorum including self: Append acknowledges once W
	// replicas hold the records durably. 0 means 2, capped at len(Nodes).
	W int
	// Transport reaches the peers. Required when Nodes has peers.
	Transport Transport
	// AckTimeout bounds each peer replication attempt (0 means 5s).
	AckTimeout time.Duration
}

// Replicated is the cluster Store: every Append lands in the local WAL
// (group-committed fsync), then replicates synchronously to the peer
// replicas, acknowledging once W nodes hold the records durably. Because
// fingerprint values are deterministic per (digest, buyer) and WAL appends
// dedup by buyer, replicas converge by record union — re-sends, races and
// restarts can only ever grow a segment toward the same set, never fork it
// (DESIGN.md §13).
type Replicated struct {
	wal        *WAL
	self       string
	peers      []string
	w          int
	tr         Transport
	ackTimeout time.Duration

	bg     context.Context // parent of every background replication ctx
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// quorumError reports an Append that could not reach its write quorum. It
// is transient: the records are durable locally and re-appending is
// idempotent, so the retry layer may simply try again.
type quorumError struct {
	acks, want int
	last       error
}

// Error implements error.
func (e *quorumError) Error() string {
	return fmt.Sprintf("registrystore: replication quorum not reached (%d/%d durable): %v", e.acks, e.want, e.last)
}

// Transient marks the error as retryable.
func (e *quorumError) Transient() bool { return true }

// Unwrap exposes the last peer error.
func (e *quorumError) Unwrap() error { return e.last }

// OpenReplicated opens the node's WAL and prepares replication to the
// configured peers.
func OpenReplicated(cfg ReplicatedConfig) (*Replicated, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("registrystore: replicated: empty node id")
	}
	var peers []string
	self := false
	for _, n := range cfg.Nodes {
		if n == cfg.Self {
			self = true
			continue
		}
		if n != "" {
			peers = append(peers, n)
		}
	}
	if !self {
		return nil, fmt.Errorf("registrystore: replicated: node %q not in replica set %v", cfg.Self, cfg.Nodes)
	}
	if len(peers) > 0 && cfg.Transport == nil {
		return nil, fmt.Errorf("registrystore: replicated: no transport for peers %v", peers)
	}
	w := cfg.W
	if w == 0 {
		w = 2
	}
	if max := len(peers) + 1; w > max {
		w = max
	}
	if w < 1 {
		return nil, fmt.Errorf("registrystore: replicated: write quorum %d < 1", cfg.W)
	}
	wal, err := OpenWAL(cfg.Dir)
	if err != nil {
		return nil, err
	}
	ackTimeout := cfg.AckTimeout
	if ackTimeout <= 0 {
		ackTimeout = defaultAckTimeout
	}
	bg, cancel := context.WithCancel(context.Background())
	return &Replicated{
		wal: wal, self: cfg.Self, peers: peers, w: w,
		tr: cfg.Transport, ackTimeout: ackTimeout,
		bg: bg, cancel: cancel,
	}, nil
}

// Load rebuilds the design's registry by replaying its WAL segment.
func (r *Replicated) Load(digest string, a *core.Analysis) (*registry.Registry, uint64, error) {
	if got := registry.DesignDigest(a); got != digest {
		return nil, 0, fmt.Errorf("registrystore: replicated: design digest mismatch (want %s, analysis %s)", digest, got)
	}
	reg := registry.New(a)
	for _, rec := range r.wal.Records(digest) {
		if err := reg.Adopt(rec.Buyer, rec.Value); err != nil {
			return nil, 0, fmt.Errorf("registrystore: replicated: replaying %s: %w", digest, err)
		}
	}
	mLoads.Inc()
	return reg, r.wal.Total(digest), nil
}

// Append makes recs durable locally (group-committed WAL fsync), then
// replicates them to every peer, returning once W replicas hold them. On a
// quorum failure the records remain durable locally — a superset of the
// acknowledged set is always allowed, and a retried Append re-sends them
// idempotently. Stragglers past the quorum keep replicating in the
// background, bounded by AckTimeout.
func (r *Replicated) Append(ctx context.Context, digest string, reg *registry.Registry, recs []Record) (uint64, error) {
	added, total, err := r.wal.Append(digest, recs)
	if err != nil {
		return 0, err
	}
	mAppends.Inc()
	if added > 0 {
		// The replication window: locally durable, not yet peer-acked.
		// Chaos plans stall here to land a node kill inside it.
		fault.Stall(fault.ReplWindow)
	}
	need := r.w - 1 // remote acks required beyond self
	if len(r.peers) == 0 {
		return total, nil
	}
	results := make(chan error, len(r.peers))
	for _, p := range r.peers {
		r.goPeer(func(node string) error { return r.replicateTo(node, digest, recs, total) }, p, results)
	}
	acks, fails := 0, 0
	var last error
	for acks < need && fails < len(r.peers)-need+1 {
		select {
		case err := <-results:
			if err == nil {
				acks++
			} else {
				fails++
				last = err
			}
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
	if acks >= need {
		return total, nil
	}
	return 0, &quorumError{acks: acks + 1, want: r.w, last: last}
}

// goPeer runs fn(node) on a tracked goroutine, delivering its error to
// results (which must have capacity for it).
func (r *Replicated) goPeer(fn func(string) error, node string, results chan<- error) {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		results <- fn(node)
	}()
}

// replicateTo delivers one append to a peer, re-sending the full record
// list when the peer turns out to be behind, and scheduling a background
// pull when the peer is ahead.
func (r *Replicated) replicateTo(node, digest string, recs []Record, total uint64) error {
	ctx, cancel := context.WithTimeout(r.bg, r.ackTimeout)
	defer cancel()
	pt, err := r.tr.Replicate(ctx, node, digest, recs, total)
	if err == nil && pt < total {
		// The peer lacks records we hold (it restarted or missed appends):
		// stream our full list — appends dedup, so this is a pure catch-up.
		mCatchups.Inc()
		pt, err = r.tr.Replicate(ctx, node, digest, r.wal.Records(digest), total)
	}
	if err != nil {
		mReplErrors.Inc()
		return err
	}
	mReplAcks.Inc()
	if pt > total {
		// The peer holds records we lack: pull them off the ack path.
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			r.pull(node, digest)
		}()
	}
	return nil
}

// pull fetches a peer's record list and unions it into the local WAL.
func (r *Replicated) pull(node, digest string) {
	ctx, cancel := context.WithTimeout(r.bg, r.ackTimeout)
	defer cancel()
	recs, err := r.tr.Fetch(ctx, node, digest)
	if err != nil {
		mReplErrors.Inc()
		return
	}
	if len(recs) == 0 {
		return
	}
	if _, _, err := r.wal.Append(digest, recs); err != nil {
		mReplErrors.Inc()
		return
	}
	mCatchups.Inc()
}

// Sync pulls every peer's records for the given digests and unions them
// locally — the restarted-follower catch-up path, run in the background at
// daemon startup. Per-peer failures are skipped (a dead peer must not block
// recovery); the first local append error aborts.
func (r *Replicated) Sync(ctx context.Context, digests []string) (adopted int, err error) {
	seen := make(map[string]bool, len(digests)+len(r.wal.Digests()))
	all := append(append([]string(nil), digests...), r.wal.Digests()...)
	for _, digest := range all {
		if seen[digest] || !validDigest(digest) {
			continue
		}
		seen[digest] = true
		for _, node := range r.peers {
			if err := ctx.Err(); err != nil {
				return adopted, err
			}
			pctx, cancel := context.WithTimeout(ctx, r.ackTimeout)
			recs, ferr := r.tr.Fetch(pctx, node, digest)
			cancel()
			if ferr != nil {
				mReplErrors.Inc()
				continue
			}
			if len(recs) == 0 {
				continue
			}
			added, _, aerr := r.wal.Append(digest, recs)
			if aerr != nil {
				return adopted, aerr
			}
			adopted += added
		}
	}
	if adopted > 0 {
		mCatchups.Inc()
	}
	return adopted, nil
}

// ApplyReplica durably appends records replicated from a peer and returns
// this node's resulting total for the design — the peer compares it with
// its own to decide whether a catch-up stream is needed. Appends dedup by
// buyer, so replays and races converge by union.
func (r *Replicated) ApplyReplica(digest string, recs []Record) (total uint64, err error) {
	_, total, err = r.wal.Append(digest, recs)
	return total, err
}

// Records returns the design's committed records in append order — the
// serving side of a peer's Fetch.
func (r *Replicated) Records(digest string) []Record { return r.wal.Records(digest) }

// Total returns the design's committed record count.
func (r *Replicated) Total(digest string) uint64 { return r.wal.Total(digest) }

// Digests lists every design with a WAL segment.
func (r *Replicated) Digests() []string { return r.wal.Digests() }

// Seq is the design's committed record count: a replicating peer's append
// moves it, telling the serving layer its in-memory registry is stale.
func (r *Replicated) Seq(digest string) uint64 { return r.wal.Total(digest) }

// Close stops background replication and closes the WAL.
func (r *Replicated) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()
	r.cancel()
	r.wg.Wait()
	return r.wal.Close()
}
