package registrystore

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/registry"
)

// defaultAckTimeout bounds one peer replication attempt. Stragglers keep
// replicating in the background under this deadline after the quorum ack.
const defaultAckTimeout = 5 * time.Second

// defaultHintRetry is the redelivery loop's base backoff between attempts
// to drain a peer's hint queue; consecutive failures double it up to
// hintBackoffCap× this base.
const defaultHintRetry = 500 * time.Millisecond

// hintBackoffCap caps the per-peer redelivery backoff as a multiple of the
// base retry interval.
const hintBackoffCap = 10

// defaultScrubInterval is how often the background scrubber re-verifies
// every WAL segment when the config leaves ScrubInterval zero.
const defaultScrubInterval = time.Minute

// Transport carries replication traffic to one peer node. The serving
// layer implements it over the cluster HTTP endpoints; tests implement it
// in-process.
type Transport interface {
	// Replicate delivers recs for the design to node, telling it the
	// sender's committed record total, and returns the peer's own total
	// after it has durably appended. A peer total below the sender's means
	// the peer lacks records the sender holds (it was down or restarted);
	// the sender responds by re-sending its full record list. A peer total
	// above means the sender is behind and should Fetch.
	Replicate(ctx context.Context, node, digest string, recs []Record, total uint64) (peerTotal uint64, err error)

	// Fetch returns the peer's full committed record list for the design.
	Fetch(ctx context.Context, node, digest string) ([]Record, error)
}

// ReplicatedConfig configures a replicated store node.
type ReplicatedConfig struct {
	// Dir is the WAL directory (one segment file per design digest; hint
	// logs live under Dir/hints).
	Dir string
	// Self is this node's id; it must appear in Nodes.
	Self string
	// Nodes is the full replica set, self included.
	Nodes []string
	// W is the write quorum including self: Append acknowledges once W
	// replicas hold the records durably. 0 means 2, capped at len(Nodes).
	W int
	// Transport reaches the peers. Required when Nodes has peers.
	Transport Transport
	// AckTimeout bounds each peer replication attempt (0 means 5s).
	AckTimeout time.Duration
	// HintRetry is the base interval between hinted-handoff redelivery
	// attempts (0 means 500ms); per-peer backoff doubles it up to 10×.
	HintRetry time.Duration
	// ScrubInterval is how often the background scrubber re-verifies every
	// WAL segment (0 means 1m; negative disables the loop — Scrub can
	// still be called directly).
	ScrubInterval time.Duration
}

// Replicated is the cluster Store: every Append lands in the local WAL
// (group-committed fsync), then replicates synchronously to the peer
// replicas, acknowledging once W nodes hold the records durably. Because
// fingerprint values are deterministic per (digest, buyer) and WAL appends
// dedup by buyer, replicas converge by record union — re-sends, races and
// restarts can only ever grow a segment toward the same set, never fork it
// (DESIGN.md §13).
//
// Two background repair mechanisms keep a wounded cluster converging:
// hinted handoff (hints.go) redelivers appends a peer missed while
// unreachable, and the WAL scrubber (scrub.go) detects and rebuilds
// segments corrupted on disk, refetching lost records from the peers.
type Replicated struct {
	wal        *WAL
	self       string
	peers      []string
	w          int
	tr         Transport
	ackTimeout time.Duration
	hintRetry  time.Duration
	scrubEvery time.Duration

	hints    map[string]*hintLog // peer node → durable hint queue
	hintWake chan struct{}

	bg     context.Context // parent of every background replication ctx
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu     sync.Mutex
	closed bool

	// Cumulative per-node repair stats, surfaced via Handoff() on
	// /cluster/status (the obs counters aggregate across instances when
	// several nodes share a process, e.g. under test).
	hintsQueued    atomic.Int64
	hintsDelivered atomic.Int64
	scrubRuns      atomic.Int64
	scrubCorrupt   atomic.Int64
	scrubRepaired  atomic.Int64
	scrubRestored  atomic.Int64
}

// peerResult pairs one peer replication outcome with the node it came from.
type peerResult struct {
	node string
	err  error
}

// quorumError reports an Append that could not reach its write quorum,
// carrying every failed peer's error so an operator can tell one dead node
// from a severed fabric. It is transient: the records are durable locally
// and re-appending is idempotent, so the retry layer may simply try again.
type quorumError struct {
	acks, want int
	peerErrs   map[string]error
}

// Error implements error, listing each failed peer.
func (e *quorumError) Error() string {
	nodes := make([]string, 0, len(e.peerErrs))
	for n := range e.peerErrs {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	parts := make([]string, 0, len(nodes))
	for _, n := range nodes {
		parts = append(parts, fmt.Sprintf("%s: %v", n, e.peerErrs[n]))
	}
	return fmt.Sprintf("registrystore: replication quorum not reached (%d/%d durable): %s",
		e.acks, e.want, strings.Join(parts, "; "))
}

// Transient marks the error as retryable.
func (e *quorumError) Transient() bool { return true }

// Unwrap exposes the first failed peer's error (by node order).
func (e *quorumError) Unwrap() error {
	nodes := make([]string, 0, len(e.peerErrs))
	for n := range e.peerErrs {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		if e.peerErrs[n] != nil {
			return e.peerErrs[n]
		}
	}
	return nil
}

// OpenReplicated opens the node's WAL and hint logs, prepares replication
// to the configured peers, and starts the hint redelivery and WAL scrubber
// loops.
func OpenReplicated(cfg ReplicatedConfig) (*Replicated, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("registrystore: replicated: empty node id")
	}
	var peers []string
	self := false
	for _, n := range cfg.Nodes {
		if n == cfg.Self {
			self = true
			continue
		}
		if n != "" {
			peers = append(peers, n)
		}
	}
	if !self {
		return nil, fmt.Errorf("registrystore: replicated: node %q not in replica set %v", cfg.Self, cfg.Nodes)
	}
	if len(peers) > 0 && cfg.Transport == nil {
		return nil, fmt.Errorf("registrystore: replicated: no transport for peers %v", peers)
	}
	w := cfg.W
	if w == 0 {
		w = 2
	}
	if max := len(peers) + 1; w > max {
		w = max
	}
	if w < 1 {
		return nil, fmt.Errorf("registrystore: replicated: write quorum %d < 1", cfg.W)
	}
	wal, err := OpenWAL(cfg.Dir)
	if err != nil {
		return nil, err
	}
	ackTimeout := cfg.AckTimeout
	if ackTimeout <= 0 {
		ackTimeout = defaultAckTimeout
	}
	hintRetry := cfg.HintRetry
	if hintRetry <= 0 {
		hintRetry = defaultHintRetry
	}
	scrubEvery := cfg.ScrubInterval
	if scrubEvery == 0 {
		scrubEvery = defaultScrubInterval
	}
	bg, cancel := context.WithCancel(context.Background())
	r := &Replicated{
		wal: wal, self: cfg.Self, peers: peers, w: w,
		tr: cfg.Transport, ackTimeout: ackTimeout,
		hintRetry: hintRetry, scrubEvery: scrubEvery,
		hints:    make(map[string]*hintLog, len(peers)),
		hintWake: make(chan struct{}, 1),
		bg:       bg, cancel: cancel,
	}
	replayed := false
	for _, node := range peers {
		hl, herr := openHintLog(filepath.Join(cfg.Dir, "hints"), node)
		if herr != nil {
			cancel()
			for _, open := range r.hints {
				open.close()
			}
			wal.Close()
			return nil, herr
		}
		r.hints[node] = hl
		if hl.pendingCount() > 0 {
			replayed = true
		}
	}
	if len(peers) > 0 {
		r.wg.Add(1)
		go r.redeliver()
		if replayed {
			r.updateHintGauge()
			r.wakeRedeliver()
		}
	}
	if scrubEvery > 0 {
		r.wg.Add(1)
		go r.scrubLoop()
	}
	return r, nil
}

// Load rebuilds the design's registry by replaying its WAL segment.
func (r *Replicated) Load(digest string, a *core.Analysis) (*registry.Registry, uint64, error) {
	if got := registry.DesignDigest(a); got != digest {
		return nil, 0, fmt.Errorf("registrystore: replicated: design digest mismatch (want %s, analysis %s)", digest, got)
	}
	reg := registry.New(a)
	for _, rec := range r.wal.Records(digest) {
		if err := reg.Adopt(rec.Buyer, rec.Value); err != nil {
			return nil, 0, fmt.Errorf("registrystore: replicated: replaying %s: %w", digest, err)
		}
	}
	mLoads.Inc()
	return reg, r.wal.Total(digest), nil
}

// Append makes recs durable locally (group-committed WAL fsync), then
// replicates them to every peer, returning once W replicas hold them. On a
// quorum failure the records remain durable locally — a superset of the
// acknowledged set is always allowed, and a retried Append re-sends them
// idempotently. Stragglers past the quorum keep replicating in the
// background, bounded by AckTimeout; a peer that fails past the quorum gets
// a durable hint and the redelivery loop finishes the job later.
func (r *Replicated) Append(ctx context.Context, digest string, reg *registry.Registry, recs []Record) (uint64, error) {
	added, total, err := r.wal.Append(digest, recs)
	if err != nil {
		return 0, err
	}
	mAppends.Inc()
	if added > 0 {
		// The replication window: locally durable, not yet peer-acked.
		// Chaos plans stall here to land a node kill inside it.
		fault.Stall(fault.ReplWindow)
	}
	need := r.w - 1 // remote acks required beyond self
	if len(r.peers) == 0 {
		return total, nil
	}
	lo := total - uint64(added) // first sequence this append introduced
	results := make(chan peerResult, len(r.peers))
	for _, p := range r.peers {
		r.goPeer(func(node string) error { return r.replicateTo(node, digest, recs, total, lo) }, p, results)
	}
	acks, fails := 0, 0
	peerErrs := make(map[string]error)
	for acks < need && fails < len(r.peers)-need+1 {
		select {
		case res := <-results:
			if res.err == nil {
				acks++
			} else {
				fails++
				peerErrs[res.node] = res.err
			}
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
	if acks >= need {
		return total, nil
	}
	return 0, &quorumError{acks: acks + 1, want: r.w, peerErrs: peerErrs}
}

// goPeer runs fn(node) on a tracked goroutine, delivering its result to
// results (which must have capacity for it). After Close has begun no new
// goroutine may start (wg.Add would race wg.Wait), so the result is an
// immediate failure instead.
func (r *Replicated) goPeer(fn func(string) error, node string, results chan<- peerResult) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		results <- peerResult{node: node, err: fmt.Errorf("registrystore: replicated: closed")}
		return
	}
	r.wg.Add(1)
	r.mu.Unlock()
	go func() {
		defer r.wg.Done()
		results <- peerResult{node: node, err: fn(node)}
	}()
}

// replicateTo delivers one append to a peer; on failure it queues a durable
// hint covering [lo, total) so the redelivery loop can finish the handoff.
func (r *Replicated) replicateTo(node, digest string, recs []Record, total, lo uint64) error {
	err := r.replicateOnce(node, digest, recs, total)
	if err != nil {
		peerErrCounter(node).Inc()
		r.queueHint(node, digest, lo, total)
	}
	return err
}

// replicateOnce is the raw replication attempt: deliver recs, re-send the
// full record list when the peer turns out to be behind, and schedule a
// background pull when the peer is ahead. It does not queue hints — the
// redelivery loop calls it directly for hints already queued.
func (r *Replicated) replicateOnce(node, digest string, recs []Record, total uint64) error {
	if err := fault.Link(r.self, node); err != nil {
		mReplErrors.Inc()
		return err
	}
	ctx, cancel := context.WithTimeout(r.bg, r.ackTimeout)
	defer cancel()
	pt, err := r.tr.Replicate(ctx, node, digest, recs, total)
	if err == nil && pt < total {
		// The peer lacks records we hold (it restarted or missed appends):
		// stream our full list — appends dedup, so this is a pure catch-up.
		mCatchups.Inc()
		pt, err = r.tr.Replicate(ctx, node, digest, r.wal.Records(digest), total)
	}
	if err != nil {
		mReplErrors.Inc()
		return err
	}
	mReplAcks.Inc()
	if pt > total {
		// The peer holds records we lack: pull them off the ack path.
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			r.pull(node, digest)
		}()
	}
	return nil
}

// pull fetches a peer's record list and unions it into the local WAL.
func (r *Replicated) pull(node, digest string) {
	if fault.Link(r.self, node) != nil {
		mReplErrors.Inc()
		return
	}
	ctx, cancel := context.WithTimeout(r.bg, r.ackTimeout)
	defer cancel()
	recs, err := r.tr.Fetch(ctx, node, digest)
	if err != nil {
		mReplErrors.Inc()
		return
	}
	if len(recs) == 0 {
		return
	}
	if _, _, err := r.wal.Append(digest, recs); err != nil {
		mReplErrors.Inc()
		return
	}
	mCatchups.Inc()
}

// queueHint durably records that node missed the digest's [lo, hi) records
// and wakes the redelivery loop.
func (r *Replicated) queueHint(node, digest string, lo, hi uint64) {
	hl := r.hints[node]
	if hl == nil {
		return
	}
	hl.add(digest, lo, hi) // on log damage the hint still queues in memory
	mHintsQueued.Inc()
	r.hintsQueued.Add(1)
	r.updateHintGauge()
	r.wakeRedeliver()
}

// wakeRedeliver nudges the redelivery loop without blocking.
func (r *Replicated) wakeRedeliver() {
	select {
	case r.hintWake <- struct{}{}:
	default:
	}
}

// updateHintGauge republishes the total pending hint count.
func (r *Replicated) updateHintGauge() {
	var n int64
	for _, hl := range r.hints {
		n += int64(hl.pendingCount())
	}
	gHintsPending.Set(n)
}

// redeliver is the hinted-handoff drain loop: whenever hints are pending it
// retries each owed peer on the configured cadence, backing off per peer
// (doubling up to 10× the base) while the peer stays unreachable, and
// clearing hints as deliveries land. It exits when the store closes.
func (r *Replicated) redeliver() {
	defer r.wg.Done()
	backoff := make(map[string]time.Duration)
	due := make(map[string]time.Time)
	for {
		pending := false
		for _, node := range r.peers {
			if r.hints[node].pendingCount() > 0 {
				pending = true
				break
			}
		}
		var tick <-chan time.Time
		if pending {
			tick = time.After(r.hintRetry)
		}
		select {
		case <-r.bg.Done():
			return
		case <-r.hintWake:
		case <-tick:
		}
		now := time.Now()
		for _, node := range r.peers {
			hl := r.hints[node]
			pend := hl.pending()
			if len(pend) == 0 || now.Before(due[node]) {
				continue
			}
			failed := false
			for digest, rng := range pend {
				recs := r.wal.Records(digest)
				lo := int(rng.Lo)
				if lo > len(recs) {
					lo = len(recs)
				}
				// replicateOnce re-sends the full list itself if the peer
				// turns out further behind than the hinted range.
				if err := r.replicateOnce(node, digest, recs[lo:], uint64(len(recs))); err != nil {
					peerErrCounter(node).Inc()
					failed = true
					break
				}
				hl.clear(digest)
				mHintsDelivered.Inc()
				r.hintsDelivered.Add(1)
				r.updateHintGauge()
			}
			if failed {
				b := backoff[node] * 2
				if b < r.hintRetry {
					b = r.hintRetry
				}
				if m := hintBackoffCap * r.hintRetry; b > m {
					b = m
				}
				backoff[node] = b
				due[node] = time.Now().Add(b)
			} else {
				delete(backoff, node)
				delete(due, node)
			}
		}
	}
}

// scrubLoop periodically re-verifies every WAL segment (scrub.go).
func (r *Replicated) scrubLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.scrubEvery)
	defer t.Stop()
	for {
		select {
		case <-r.bg.Done():
			return
		case <-t.C:
			r.Scrub()
		}
	}
}

// Scrub runs one scrubber pass now, fetching replacement records for
// damaged segments from the peers, and returns the pass report.
func (r *Replicated) Scrub() ScrubReport {
	var fetch func(string) []Record
	if len(r.peers) > 0 {
		fetch = r.fetchPeers
	}
	rep := r.wal.Scrub(fetch)
	r.scrubRuns.Add(1)
	r.scrubCorrupt.Add(int64(rep.Corrupt))
	r.scrubRepaired.Add(int64(rep.Repaired))
	r.scrubRestored.Add(int64(rep.Restored))
	return rep
}

// fetchPeers unions every reachable peer's record list for the digest —
// the scrubber's source for records a damaged segment lost.
func (r *Replicated) fetchPeers(digest string) []Record {
	var out []Record
	seen := make(map[string]bool)
	for _, node := range r.peers {
		if fault.Link(r.self, node) != nil {
			continue
		}
		ctx, cancel := context.WithTimeout(r.bg, r.ackTimeout)
		recs, err := r.tr.Fetch(ctx, node, digest)
		cancel()
		if err != nil {
			mReplErrors.Inc()
			peerErrCounter(node).Inc()
			continue
		}
		for _, rec := range recs {
			if !seen[rec.Buyer] {
				seen[rec.Buyer] = true
				out = append(out, rec)
			}
		}
	}
	return out
}

// HintsPending reports how many designs have undelivered hints per peer;
// peers with an empty queue are omitted. An empty map means every
// acknowledged record has reached every peer this node owes.
func (r *Replicated) HintsPending() map[string]int {
	out := make(map[string]int)
	for node, hl := range r.hints {
		if n := hl.pendingCount(); n > 0 {
			out[node] = n
		}
	}
	return out
}

// HandoffStats is the node's cumulative repair activity, surfaced on
// GET /cluster/status.
type HandoffStats struct {
	// HintsQueued / HintsDelivered count hinted-handoff activity since the
	// process started; HintsPending is the live per-peer queue depth.
	HintsQueued    int64          `json:"hints_queued"`
	HintsDelivered int64          `json:"hints_delivered"`
	HintsPending   map[string]int `json:"hints_pending,omitempty"`
	// Scrub* count WAL scrubber activity since the process started.
	ScrubRuns     int64 `json:"scrub_runs"`
	ScrubCorrupt  int64 `json:"scrub_corrupt_segments"`
	ScrubRepaired int64 `json:"scrub_repaired_segments"`
	ScrubRestored int64 `json:"scrub_records_restored"`
}

// Handoff snapshots the node's repair stats.
func (r *Replicated) Handoff() HandoffStats {
	return HandoffStats{
		HintsQueued:    r.hintsQueued.Load(),
		HintsDelivered: r.hintsDelivered.Load(),
		HintsPending:   r.HintsPending(),
		ScrubRuns:      r.scrubRuns.Load(),
		ScrubCorrupt:   r.scrubCorrupt.Load(),
		ScrubRepaired:  r.scrubRepaired.Load(),
		ScrubRestored:  r.scrubRestored.Load(),
	}
}

// Sync pulls every peer's records for the given digests and unions them
// locally — the restarted-follower catch-up path, run in the background at
// daemon startup. Per-peer failures are skipped (a dead peer must not block
// recovery); the first local append error aborts.
func (r *Replicated) Sync(ctx context.Context, digests []string) (adopted int, err error) {
	seen := make(map[string]bool, len(digests)+len(r.wal.Digests()))
	all := append(append([]string(nil), digests...), r.wal.Digests()...)
	for _, digest := range all {
		if seen[digest] || !validDigest(digest) {
			continue
		}
		seen[digest] = true
		for _, node := range r.peers {
			if err := ctx.Err(); err != nil {
				return adopted, err
			}
			if fault.Link(r.self, node) != nil {
				continue
			}
			pctx, cancel := context.WithTimeout(ctx, r.ackTimeout)
			recs, ferr := r.tr.Fetch(pctx, node, digest)
			cancel()
			if ferr != nil {
				mReplErrors.Inc()
				peerErrCounter(node).Inc()
				continue
			}
			if len(recs) == 0 {
				continue
			}
			added, _, aerr := r.wal.Append(digest, recs)
			if aerr != nil {
				return adopted, aerr
			}
			adopted += added
		}
	}
	if adopted > 0 {
		mCatchups.Inc()
	}
	return adopted, nil
}

// ApplyReplica durably appends records replicated from a peer and returns
// this node's resulting total for the design — the peer compares it with
// its own to decide whether a catch-up stream is needed. Appends dedup by
// buyer, so replays and races converge by union.
func (r *Replicated) ApplyReplica(digest string, recs []Record) (total uint64, err error) {
	_, total, err = r.wal.Append(digest, recs)
	return total, err
}

// Records returns the design's committed records in append order — the
// serving side of a peer's Fetch.
func (r *Replicated) Records(digest string) []Record { return r.wal.Records(digest) }

// Total returns the design's committed record count.
func (r *Replicated) Total(digest string) uint64 { return r.wal.Total(digest) }

// Digests lists every design with a WAL segment.
func (r *Replicated) Digests() []string { return r.wal.Digests() }

// Seq is the design's committed record count: a replicating peer's append
// moves it, telling the serving layer its in-memory registry is stale.
func (r *Replicated) Seq(digest string) uint64 { return r.wal.Total(digest) }

// Close stops every background loop — straggler replications, the hint
// redelivery loop, the scrubber — joins them, then closes the hint logs and
// the WAL. Append calls racing Close fail their replication legs instead of
// leaking goroutines.
func (r *Replicated) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()
	r.cancel()
	r.wg.Wait()
	for _, hl := range r.hints {
		hl.close()
	}
	return r.wal.Close()
}
