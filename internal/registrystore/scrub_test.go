package registrystore

import (
	"bytes"
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// segPath names the test digest's segment file inside dir.
func segPath(dir, digest string) string {
	return filepath.Join(dir, digest+walSuffix)
}

// TestScrubCleanPassIsNoop: scrubbing an intact WAL touches nothing.
func TestScrubCleanPassIsNoop(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, _, err := w.Append(walTestDigest, walRecords(20)); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(segPath(dir, walTestDigest))
	if err != nil {
		t.Fatal(err)
	}
	rep := w.Scrub(nil)
	if rep.Segments != 1 || rep.Corrupt != 0 || rep.Repaired != 0 || rep.Busy != 0 {
		t.Fatalf("clean scrub report %+v", rep)
	}
	after, err := os.ReadFile(segPath(dir, walTestDigest))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("clean scrub rewrote the segment file")
	}
}

// TestScrubRepairsBitFlip: a bit flipped in a committed frame while the
// process is running is detected by the next scrub pass, the damaged file
// is quarantined to *.corrupt, and the rebuilt segment is byte-identical to
// the pre-corruption file — the in-memory replay is authoritative.
func TestScrubRepairsBitFlip(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	want := walRecords(30)
	if _, _, err := w.Append(walTestDigest, want); err != nil {
		t.Fatal(err)
	}
	path := segPath(dir, walTestDigest)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	damaged := append([]byte(nil), pristine...)
	damaged[walHeaderSize+len(damaged)/3] ^= 0x40
	if err := os.WriteFile(path, damaged, 0o644); err != nil {
		t.Fatal(err)
	}

	rep := w.Scrub(nil)
	if rep.Corrupt != 1 || rep.Repaired != 1 {
		t.Fatalf("scrub report %+v, want corrupt=1 repaired=1", rep)
	}
	rebuilt, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rebuilt, pristine) {
		t.Fatal("rebuilt segment is not byte-identical to the pre-corruption file")
	}
	quarantined, err := os.ReadFile(path + ".corrupt")
	if err != nil {
		t.Fatalf("no quarantined copy: %v", err)
	}
	if !bytes.Equal(quarantined, damaged) {
		t.Fatal("quarantined copy does not hold the damaged bytes")
	}
	got := w.Records(walTestDigest)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	// Appends keep working on the rebuilt file and the next pass is clean.
	if _, _, err := w.Append(walTestDigest, []Record{{Buyer: "post-repair", Value: "1"}}); err != nil {
		t.Fatal(err)
	}
	if rep := w.Scrub(nil); rep.Corrupt != 0 {
		t.Fatalf("pass after repair+append still corrupt: %+v", rep)
	}
}

// TestScrubRepairsVanishedFile: a segment file that disappears out from
// under the process (the crash-between-renames shape) is rebuilt whole from
// the in-memory replay.
func TestScrubRepairsVanishedFile(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	want := walRecords(5)
	if _, _, err := w.Append(walTestDigest, want); err != nil {
		t.Fatal(err)
	}
	path := segPath(dir, walTestDigest)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	rep := w.Scrub(nil)
	if rep.Corrupt != 1 || rep.Repaired != 1 {
		t.Fatalf("scrub report %+v, want corrupt=1 repaired=1", rep)
	}
	rebuilt, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rebuilt, pristine) {
		t.Fatal("rebuilt segment differs from the lost file")
	}
}

// TestScrubFetchesLostRecords: when a rebuild runs with a peer fetch, the
// rebuilt segment also adopts records the peers hold that this node lacks —
// lost history comes back along with the repair.
func TestScrubFetchesLostRecords(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	local := walRecords(4)
	if _, _, err := w.Append(walTestDigest, local); err != nil {
		t.Fatal(err)
	}
	path := segPath(dir, walTestDigest)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[walHeaderSize+4] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	peerExtra := Record{Buyer: "peer-only", Value: "777"}
	rep := w.Scrub(func(digest string) []Record {
		if digest != walTestDigest {
			t.Fatalf("fetch for unexpected digest %s", digest)
		}
		return append(append([]Record(nil), local...), peerExtra)
	})
	// The flip lands in frame 0's prefix, so no leading frame survives:
	// all four local records plus the peer's are "restored" into the
	// rebuild relative to what the damaged file could still replay.
	if rep.Repaired != 1 || rep.Restored != 5 {
		t.Fatalf("scrub report %+v, want repaired=1 restored=5", rep)
	}
	got := w.Records(walTestDigest)
	if len(got) != 5 || got[4] != peerExtra {
		t.Fatalf("peer record not adopted: %v", got)
	}
	// The rebuilt file replays to the same list.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := w2.Records(walTestDigest); len(got) != 5 || got[4] != peerExtra {
		t.Fatalf("rebuilt file replays %v", got)
	}
}

// TestWALOpenSalvagesMidFileCorruption: corruption in the middle of a
// segment discovered at open is not a torn tail — the CRC-valid frames
// beyond the damage are salvaged, the file is quarantined and rebuilt, and
// only the records inside the damaged region are lost (to be refetched from
// peers by Sync or the scrubber).
func TestWALOpenSalvagesMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := walRecords(10)
	if _, _, err := w.Append(walTestDigest, want); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	path := segPath(dir, walTestDigest)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Locate frame 3's offset and flip a bit inside it.
	off := int64(walHeaderSize)
	for i := 0; i < 3; i++ {
		_, next, ok := decodeFrame(data, off, uint64(i))
		if !ok {
			t.Fatalf("prep decode of frame %d failed", i)
		}
		off = next
	}
	data[off+walFrameOverhead+2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got := w2.Records(walTestDigest)
	if len(got) != len(want)-1 {
		t.Fatalf("salvaged %d records, want %d (all but the damaged frame)", len(got), len(want)-1)
	}
	byBuyer := make(map[string]string, len(got))
	for _, rec := range got {
		byBuyer[rec.Buyer] = rec.Value
	}
	for i, rec := range want {
		if i == 3 {
			if _, ok := byBuyer[rec.Buyer]; ok {
				t.Fatal("damaged record came back without a peer to fetch it from")
			}
			continue
		}
		if byBuyer[rec.Buyer] != rec.Value {
			t.Fatalf("record %d (%s) lost in salvage", i, rec.Buyer)
		}
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("damaged file not quarantined: %v", err)
	}
	// The rebuild is durable: another reopen replays the same set.
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	w3, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	if got := w3.Records(walTestDigest); len(got) != len(want)-1 {
		t.Fatalf("reopen after rebuild replays %d records, want %d", len(got), len(want)-1)
	}
}

// TestScrubPropertyRandomBitFlips: the end-to-end repair property — for a
// random bit flipped in a random committed frame, a restarted replica
// (open-time salvage), its startup Sync (peer refetch) and a scrub pass
// always converge back to exactly the pre-corruption record list, verified
// durable by a final clean reopen.
func TestScrubPropertyRandomBitFlips(t *testing.T) {
	want := walRecords(12)
	// Build the pristine segment image once.
	master := t.TempDir()
	w, err := OpenWAL(master)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.Append(walTestDigest, want); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	pristine, err := os.ReadFile(segPath(master, walTestDigest))
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(42))
	frameBytes := len(pristine) - walHeaderSize
	for trial := 0; trial < 25; trial++ {
		off := walHeaderSize + rng.Intn(frameBytes)
		bit := byte(1) << rng.Intn(8)
		dir := t.TempDir()
		damaged := append([]byte(nil), pristine...)
		damaged[off] ^= bit
		if err := os.WriteFile(segPath(dir, walTestDigest), damaged, 0o644); err != nil {
			t.Fatal(err)
		}
		// The surviving peer holds the full acknowledged list.
		ft := newFakeTransport(t, "n2")
		if _, _, err := ft.peers["n2"].Append(walTestDigest, want); err != nil {
			t.Fatal(err)
		}
		r, err := OpenReplicated(ReplicatedConfig{
			Dir: dir, Self: "n1", Nodes: []string{"n1", "n2"}, W: 1,
			Transport: ft, AckTimeout: 2 * time.Second,
		})
		if err != nil {
			t.Fatalf("trial %d (byte %d): reopen: %v", trial, off, err)
		}
		if _, err := r.Sync(context.Background(), nil); err != nil {
			t.Fatalf("trial %d (byte %d): sync: %v", trial, off, err)
		}
		r.Scrub()
		got := r.Records(walTestDigest)
		byBuyer := make(map[string]string, len(got))
		for _, rec := range got {
			byBuyer[rec.Buyer] = rec.Value
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d (byte %d): %d records after repair, want %d", trial, off, len(got), len(want))
		}
		for _, rec := range want {
			if byBuyer[rec.Buyer] != rec.Value {
				t.Fatalf("trial %d (byte %d): record %q=%q lost (got %q)", trial, off, rec.Buyer, rec.Value, byBuyer[rec.Buyer])
			}
		}
		// And the repaired file is durable: a clean reopen sees the same set.
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		w2, err := OpenWAL(dir)
		if err != nil {
			t.Fatalf("trial %d: reopen after repair: %v", trial, err)
		}
		if n := len(w2.Records(walTestDigest)); n != len(want) {
			t.Fatalf("trial %d: reopen after repair replays %d records, want %d", trial, n, len(want))
		}
		w2.Close()
	}
}
