// Package registrystore is the durable home of per-design issuance
// registries — the legal record that lets the IP vendor accuse a buyer
// (Dunbar & Qu §III-E; SIGNED's buyer-identifying registry frames the same
// obligation). The serving layer (internal/serve) holds a live
// registry.Registry per design in memory; this package owns the only state
// the service can never afford to lose: the acknowledged issuances.
//
// Two implementations satisfy Store:
//
//   - Local persists each design's registry as an atomically replaced JSON
//     snapshot (<digest>.registry.json), exactly the single-node daemon's
//     historical format — crash-safe via temp file + fsync + rename.
//   - Replicated turns the registry into an append-only write-ahead log
//     (one WAL segment per design digest, CRC-framed records, group-
//     committed fsync) replicated synchronously to the peer replicas of an
//     odcfpd cluster: an Append acknowledges only after W replicas hold the
//     records durably, so any single node can be killed without losing an
//     acknowledged issuance.
//
// The two are interchangeable behind Store because issuance is
// deterministic: a fingerprint value is a pure function of (design digest,
// buyer), so replaying, re-minting or even double-appending a record can
// never produce a conflicting registry — the property that lets the
// replicated store converge by record union instead of consensus
// (DESIGN.md §13).
package registrystore

import (
	"context"
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/registry"
)

// Store metrics. Append/load counts are workload-determined; fsync counts
// depend on group-commit batching under concurrent load and are Nondet,
// as is everything downstream of replication and fault timing.
var (
	mAppends    = obs.NewCounter("registrystore", "appends")
	mRecords    = obs.NewCounter("registrystore", "records")
	mLoads      = obs.NewCounter("registrystore", "loads")
	mWALFsyncs  = obs.NewCounter("registrystore", "wal_fsyncs", obs.Nondet())
	mWALTruncs  = obs.NewCounter("registrystore", "wal_truncated_records", obs.Nondet())
	mReplAcks   = obs.NewCounter("registrystore", "repl_acks", obs.Nondet())
	mReplErrors = obs.NewCounter("registrystore", "repl_errors", obs.Nondet())
	mCatchups   = obs.NewCounter("registrystore", "repl_catchups", obs.Nondet())

	// Hinted handoff (hints.go): hints queued when a peer replication
	// fails past quorum, delivered when the redelivery loop drains them.
	mHintsQueued    = obs.NewCounter("registrystore", "cluster_hints_queued", obs.Nondet())
	mHintsDelivered = obs.NewCounter("registrystore", "cluster_hints_delivered", obs.Nondet())
	gHintsPending   = obs.NewGauge("registrystore", "cluster_hints_pending", obs.Nondet())

	// WAL scrubber (scrub.go): segments verified, found corrupt, rebuilt,
	// and records restored into rebuilt segments; salvages count open-time
	// mid-file recoveries.
	mScrubRuns     = obs.NewCounter("registrystore", "scrub_runs", obs.Nondet())
	mScrubSegments = obs.NewCounter("registrystore", "scrub_segments", obs.Nondet())
	mScrubCorrupt  = obs.NewCounter("registrystore", "scrub_corrupt_segments", obs.Nondet())
	mScrubRepaired = obs.NewCounter("registrystore", "scrub_repaired_segments", obs.Nondet())
	mScrubRestored = obs.NewCounter("registrystore", "scrub_records_restored", obs.Nondet())
	mScrubSalvages = obs.NewCounter("registrystore", "scrub_open_salvages", obs.Nondet())
)

// peerErrCounters lazily materialises one registrystore.peer_errors{node}
// counter per peer, so operators can tell a dead peer (one node's counter
// climbing) from a flaky fabric (every counter climbing).
var peerErrCounters struct {
	mu sync.Mutex
	m  map[string]*obs.Counter
}

// peerErrCounter returns (registering on first use) the peer's replication
// error counter.
func peerErrCounter(node string) *obs.Counter {
	peerErrCounters.mu.Lock()
	defer peerErrCounters.mu.Unlock()
	if peerErrCounters.m == nil {
		peerErrCounters.m = make(map[string]*obs.Counter)
	}
	c, ok := peerErrCounters.m[node]
	if !ok {
		c = obs.NewCounter("registrystore", `peer_errors{node="`+node+`"}`, obs.Nondet())
		peerErrCounters.m[node] = c
	}
	return c
}

// Record is one acknowledged issuance: the buyer a fingerprinted copy was
// minted for and the decimal fingerprint value recorded for them. Records
// are immutable and self-contained — the value re-derives the copy
// byte-identically (registry issuance is deterministic per buyer), so a
// record alone is a complete acknowledgement.
type Record struct {
	// Buyer names the recipient.
	Buyer string `json:"buyer"`
	// Value is the fingerprint as a decimal mixed-radix integer.
	Value string `json:"value"`
}

// Store persists issuance registries, one per design digest. The serving
// layer mutates an in-memory registry.Registry first (reserving values
// under the design lock) and then calls Append with the freshly created
// records; only when Append returns nil may the issuance be acknowledged
// to a client.
type Store interface {
	// Load rebuilds the design's registry from durable state, validating it
	// against the analysis, and returns the store's current sequence number
	// for the design. A design with no durable records yields a fresh empty
	// registry, not an error.
	Load(digest string, a *core.Analysis) (*registry.Registry, uint64, error)

	// Append durably persists recs for the design and returns the store's
	// new sequence number. reg is the in-memory registry already holding
	// the records (snapshot implementations serialise it; log
	// implementations ignore it). The durability contract: when Append
	// returns nil, the records survive any crash the implementation claims
	// to tolerate — a process kill for Local, the kill of any single
	// cluster node for Replicated.
	Append(ctx context.Context, digest string, reg *registry.Registry, recs []Record) (uint64, error)

	// Seq returns the store's current sequence number for the design. A
	// value different from the one observed at Load (or returned by the
	// last Append) means another writer — a replicating peer — has grown
	// the durable record set, and the in-memory registry must be reloaded
	// before its next use.
	Seq(digest string) uint64

	// Close releases file handles and stops background work. The store must
	// not be used afterwards.
	Close() error
}
