package registrystore

import (
	"fmt"
	"testing"
)

var ringTestNodes = []string{
	"http://127.0.0.1:9001",
	"http://127.0.0.1:9002",
	"http://127.0.0.1:9003",
	"http://127.0.0.1:9004",
}

// TestRingDeterministic: every replica builds the ring from its own copy of
// the peer list, possibly in a different order — they must all agree on
// each design's leader and full preference order.
func TestRingDeterministic(t *testing.T) {
	a := NewRing(ringTestNodes)
	shuffled := []string{ringTestNodes[2], ringTestNodes[0], ringTestNodes[3], ringTestNodes[1]}
	b := NewRing(append(shuffled, ringTestNodes[0])) // duplicate entries are ignored too
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("%032x", i)
		ao, bo := a.Order(key), b.Order(key)
		if len(ao) != len(ringTestNodes) || len(bo) != len(ringTestNodes) {
			t.Fatalf("key %s: order lengths %d, %d", key, len(ao), len(bo))
		}
		seen := map[string]bool{}
		for j := range ao {
			if ao[j] != bo[j] {
				t.Fatalf("key %s: orders diverge at %d: %v vs %v", key, j, ao, bo)
			}
			if seen[ao[j]] {
				t.Fatalf("key %s: duplicate node in order %v", key, ao)
			}
			seen[ao[j]] = true
		}
	}
}

// TestRingBalance: leadership spreads over the replica set — with 64
// vnodes per node no replica should lead a grossly disproportionate share.
func TestRingBalance(t *testing.T) {
	r := NewRing(ringTestNodes)
	counts := map[string]int{}
	const keys = 2000
	for i := 0; i < keys; i++ {
		counts[r.Leader(fmt.Sprintf("%032x", i))]++
	}
	for _, n := range ringTestNodes {
		share := float64(counts[n]) / keys
		if share < 0.10 || share > 0.45 {
			t.Errorf("node %s leads %.1f%% of keys (counts %v)", n, 100*share, counts)
		}
	}
}

// TestRingFailoverStability: removing one node from the set only promotes
// that node's successors — every surviving node keeps its relative position
// in each key's preference order, so a node death reshuffles nothing else.
func TestRingFailoverStability(t *testing.T) {
	full := NewRing(ringTestNodes)
	dead := ringTestNodes[1]
	reduced := NewRing([]string{ringTestNodes[0], ringTestNodes[2], ringTestNodes[3]})
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("%032x", i)
		want := make([]string, 0, 3)
		for _, n := range full.Order(key) {
			if n != dead {
				want = append(want, n)
			}
		}
		got := reduced.Order(key)
		if len(got) != len(want) {
			t.Fatalf("key %s: reduced order %v, want %v", key, got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("key %s: reduced order %v, want full-minus-dead %v", key, got, want)
			}
		}
	}
}
