package registrystore

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"
)

// openHintedReplicated opens a replicated store with a fast hint-retry
// cadence so redelivery tests settle quickly.
func openHintedReplicated(t *testing.T, dir string, ft *fakeTransport, self string, nodes []string, w int) *Replicated {
	t.Helper()
	r, err := OpenReplicated(ReplicatedConfig{
		Dir: dir, Self: self, Nodes: nodes, W: w,
		Transport: ft, AckTimeout: time.Second,
		HintRetry: 5 * time.Millisecond, ScrubInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// TestHintLogRoundTrip: hints merge in memory, survive a close/reopen, and
// the log compacts back to its header once the queue drains.
func TestHintLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	hl, err := openHintLog(dir, "http://127.0.0.1:9999")
	if err != nil {
		t.Fatal(err)
	}
	d2 := "99887766554433221100ffeeddccbbaa"
	if err := hl.add(replTestDigest, 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := hl.add(replTestDigest, 2, 5); err != nil {
		t.Fatal(err)
	}
	if err := hl.add(d2, 1, 3); err != nil {
		t.Fatal(err)
	}
	if err := hl.close(); err != nil {
		t.Fatal(err)
	}

	hl2, err := openHintLog(dir, "http://127.0.0.1:9999")
	if err != nil {
		t.Fatal(err)
	}
	pend := hl2.pending()
	if len(pend) != 2 || pend[replTestDigest] != (hintRange{Lo: 0, Hi: 5}) || pend[d2] != (hintRange{Lo: 1, Hi: 3}) {
		t.Fatalf("replayed hints %v", pend)
	}
	hl2.clear(replTestDigest)
	if hl2.size == int64(len(hintMagic)) {
		t.Fatal("log compacted with hints still pending")
	}
	hl2.clear(d2)
	if hl2.size != int64(len(hintMagic)) {
		t.Fatal("log did not compact once the queue drained")
	}
	if err := hl2.close(); err != nil {
		t.Fatal(err)
	}
	hl3, err := openHintLog(dir, "http://127.0.0.1:9999")
	if err != nil {
		t.Fatal(err)
	}
	defer hl3.close()
	if n := hl3.pendingCount(); n != 0 {
		t.Fatalf("compacted log replayed %d hints", n)
	}
}

// TestHintedHandoffDelivers: an append that reaches quorum while one peer
// is down queues a durable hint for that peer, and the redelivery loop
// drains it once the peer comes back — without any further client traffic.
func TestHintedHandoffDelivers(t *testing.T) {
	nodes := []string{"n1", "n2", "n3"}
	ft := newFakeTransport(t, "n2", "n3")
	ft.setDown("n3", true)
	r := openHintedReplicated(t, t.TempDir(), ft, "n1", nodes, 2)

	recs := []Record{{Buyer: "alice", Value: "101"}, {Buyer: "bob", Value: "202"}}
	if _, err := r.Append(context.Background(), replTestDigest, nil, recs); err != nil {
		t.Fatalf("append with quorum available failed: %v", err)
	}
	waitFor(t, "hint queued for n3", func() bool { return r.HintsPending()["n3"] == 1 })
	if st := r.Handoff(); st.HintsQueued == 0 {
		t.Fatalf("Handoff stats missed the queued hint: %+v", st)
	}

	ft.setDown("n3", false)
	waitFor(t, "hint redelivery", func() bool { return ft.peers["n3"].Total(replTestDigest) == 2 })
	waitFor(t, "hint queue drained", func() bool { return len(r.HintsPending()) == 0 })
	if st := r.Handoff(); st.HintsDelivered == 0 {
		t.Fatalf("Handoff stats missed the delivery: %+v", st)
	}
}

// TestHintedHandoffSurvivesRestart: hints are durable — a coordinator that
// crashes with undelivered hints resumes the handoff when it reopens.
func TestHintedHandoffSurvivesRestart(t *testing.T) {
	nodes := []string{"n1", "n2", "n3"}
	dir := t.TempDir()
	ft := newFakeTransport(t, "n2", "n3")
	ft.setDown("n3", true)
	r, err := OpenReplicated(ReplicatedConfig{
		Dir: dir, Self: "n1", Nodes: nodes, W: 2,
		Transport: ft, AckTimeout: time.Second,
		HintRetry: 5 * time.Millisecond, ScrubInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Append(context.Background(), replTestDigest, nil,
		[]Record{{Buyer: "carol", Value: "303"}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "hint queued", func() bool { return r.HintsPending()["n3"] == 1 })
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// The peer recovers while the coordinator is down; the reopened
	// coordinator owes the delivery and drains the replayed hint.
	ft.setDown("n3", false)
	r2 := openHintedReplicated(t, dir, ft, "n1", nodes, 2)
	waitFor(t, "replayed hint redelivery", func() bool { return ft.peers["n3"].Total(replTestDigest) == 1 })
	waitFor(t, "replayed queue drained", func() bool { return len(r2.HintsPending()) == 0 })
}

// TestQuorumErrorReportsEveryPeer: a quorum failure names each failed peer
// with its own error, not just whichever failed last.
func TestQuorumErrorReportsEveryPeer(t *testing.T) {
	nodes := []string{"n1", "n2", "n3"}
	ft := newFakeTransport(t, "n2", "n3")
	ft.setDown("n2", true)
	ft.setDown("n3", true)
	r := openHintedReplicated(t, t.TempDir(), ft, "n1", nodes, 2)

	_, err := r.Append(context.Background(), replTestDigest, nil,
		[]Record{{Buyer: "dave", Value: "404"}})
	if err == nil {
		t.Fatal("append with every peer down reached quorum")
	}
	var qe *quorumError
	if !errors.As(err, &qe) {
		t.Fatalf("error %v is not a quorumError", err)
	}
	if len(qe.peerErrs) != 2 || qe.peerErrs["n2"] == nil || qe.peerErrs["n3"] == nil {
		t.Fatalf("peer error map %v, want entries for n2 and n3", qe.peerErrs)
	}
	msg := err.Error()
	if !strings.Contains(msg, "n2:") || !strings.Contains(msg, "n3:") {
		t.Fatalf("error message %q does not name both failed peers", msg)
	}
	if qe.Unwrap() == nil || !qe.Transient() {
		t.Fatalf("quorumError lost Unwrap/Transient: %#v", qe)
	}
}

// blockingTransport parks every Replicate until its context is cancelled —
// the worst-case straggler. Fetch answers empty immediately.
type blockingTransport struct{}

func (blockingTransport) Replicate(ctx context.Context, node, digest string, recs []Record, total uint64) (uint64, error) {
	<-ctx.Done()
	return 0, ctx.Err()
}

func (blockingTransport) Fetch(ctx context.Context, node, digest string) ([]Record, error) {
	return nil, nil
}

// TestCloseJoinsStragglers: Close cancels and joins every background
// goroutine — post-quorum straggler replications, the hint redelivery loop,
// the scrubber — even while peers hang, and no goroutines leak.
func TestCloseJoinsStragglers(t *testing.T) {
	before := runtime.NumGoroutine()
	nodes := []string{"n1", "n2", "n3"}
	r, err := OpenReplicated(ReplicatedConfig{
		Dir: t.TempDir(), Self: "n1", Nodes: nodes, W: 1,
		Transport: blockingTransport{}, AckTimeout: time.Minute,
		HintRetry: 5 * time.Millisecond, ScrubInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// W=1 acks immediately; both peer replications are stragglers parked
	// inside the blocking transport.
	if _, err := r.Append(context.Background(), replTestDigest, nil,
		[]Record{{Buyer: "erin", Value: "505"}}); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- r.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not join the straggler goroutines")
	}
	// Appends after Close fail their replication legs instead of panicking
	// a WaitGroup or leaking goroutines.
	if _, err := r.Append(context.Background(), replTestDigest, nil,
		[]Record{{Buyer: "frank", Value: "606"}}); err == nil {
		t.Fatal("append after Close succeeded")
	}
	waitFor(t, "goroutines to drain", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= before
	})
}
