package registrystore

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/fault"
)

const walTestDigest = "00112233445566778899aabbccddeeff"

// walRecords generates n deterministic pseudo-random records: varied buyer
// and value lengths exercise the frame length fields.
func walRecords(n int) []Record {
	rng := rand.New(rand.NewSource(7))
	recs := make([]Record, n)
	for i := range recs {
		pad := make([]byte, rng.Intn(40))
		for j := range pad {
			pad[j] = 'a' + byte(rng.Intn(26))
		}
		recs[i] = Record{
			Buyer: fmt.Sprintf("buyer-%03d-%s", i, pad),
			Value: fmt.Sprintf("%d", rng.Uint64()),
		}
	}
	return recs
}

// TestWALAppendReopenReplay: append N records one at a time, reopen the
// directory, and the replay yields exactly the N records in append order —
// the round-trip property the registry rebuild depends on.
func TestWALAppendReopenReplay(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := walRecords(100)
	for i, rec := range want {
		added, total, err := w.Append(walTestDigest, []Record{rec})
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if added != 1 || total != uint64(i+1) {
			t.Fatalf("append %d: added=%d total=%d, want 1, %d", i, added, total, i+1)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got := w2.Records(walTestDigest)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if ds := w2.Digests(); len(ds) != 1 || ds[0] != walTestDigest {
		t.Errorf("Digests = %v", ds)
	}
}

// TestWALIdempotentAndConflict: re-appending a committed record is a free
// no-op, a batch dedups against committed records, and the same buyer with
// a different value is rejected without touching the segment.
func TestWALIdempotentAndConflict(t *testing.T) {
	w, err := OpenWAL(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, _, err := w.Append(walTestDigest, []Record{{Buyer: "a", Value: "1"}}); err != nil {
		t.Fatal(err)
	}
	added, total, err := w.Append(walTestDigest, []Record{{Buyer: "a", Value: "1"}})
	if err != nil || added != 0 || total != 1 {
		t.Fatalf("duplicate append: added=%d total=%d err=%v, want 0, 1, nil", added, total, err)
	}
	added, total, err = w.Append(walTestDigest, []Record{{Buyer: "a", Value: "1"}, {Buyer: "b", Value: "2"}})
	if err != nil || added != 1 || total != 2 {
		t.Fatalf("mixed batch: added=%d total=%d err=%v, want 1, 2, nil", added, total, err)
	}
	if _, _, err := w.Append(walTestDigest, []Record{{Buyer: "a", Value: "999"}}); err == nil {
		t.Fatal("conflicting value for a committed buyer was accepted")
	}
	if got := w.Records(walTestDigest); len(got) != 2 {
		t.Fatalf("conflict mutated the segment: %v", got)
	}
}

// TestWALTornTailTruncated: a crash mid-write leaves a partial (or
// CRC-corrupt) final frame; reopening truncates exactly the torn frame and
// keeps every record before it.
func TestWALTornTailTruncated(t *testing.T) {
	for name, corrupt := range map[string]func(path string, t *testing.T){
		// Partial frame: only half the bytes of the next frame made it out.
		"partial": func(path string, t *testing.T) {
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			frame, err := encodeFrame(3, Record{Buyer: "torn", Value: "12345"})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(frame[:len(frame)/2]); err != nil {
				t.Fatal(err)
			}
			f.Close()
		},
		// Bit rot in the last complete frame: the CRC catches it and the
		// whole frame is cut.
		"crc": func(path string, t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)-1] ^= 0x40
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			w, err := OpenWAL(dir)
			if err != nil {
				t.Fatal(err)
			}
			want := walRecords(3)
			if _, _, err := w.Append(walTestDigest, want); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}

			path := filepath.Join(dir, walTestDigest+walSuffix)
			clean, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			corrupt(path, t)

			truncsBefore := mWALTruncs.Value()
			w2, err := OpenWAL(dir)
			if err != nil {
				t.Fatalf("reopen after torn tail: %v", err)
			}
			defer w2.Close()
			if mWALTruncs.Value() == truncsBefore {
				t.Error("torn tail did not count a truncation")
			}
			got := w2.Records(walTestDigest)
			survivors := 3
			if name == "crc" {
				survivors = 2 // the corrupted final frame is gone
			}
			if len(got) != survivors {
				t.Fatalf("replayed %d records, want %d", len(got), survivors)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
				}
			}
			// The file is physically trimmed, and appending after recovery
			// lands at a clean offset.
			st, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if name == "partial" && st.Size() != clean.Size() {
				t.Errorf("file size after recovery = %d, want %d", st.Size(), clean.Size())
			}
			if _, total, err := w2.Append(walTestDigest, []Record{{Buyer: "after", Value: "1"}}); err != nil || total != uint64(survivors+1) {
				t.Fatalf("append after recovery: total=%d err=%v", total, err)
			}
		})
	}
}

// TestWALGroupCommit: concurrent appends to one segment share fsyncs. A
// stalled fsync (fault injection) holds the first flush open while the
// remaining appends queue behind it, so the fsync count comes out well
// below the append count.
func TestWALGroupCommit(t *testing.T) {
	plan, err := fault.Parse("store.fsync:delay=2ms")
	if err != nil {
		t.Fatal(err)
	}
	fault.Enable(plan)
	t.Cleanup(fault.Disable)

	w, err := OpenWAL(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	const appends = 32
	before := mWALFsyncs.Value()
	var wg sync.WaitGroup
	for i := 0; i < appends; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := Record{Buyer: fmt.Sprintf("gc-%02d", i), Value: fmt.Sprintf("%d", i)}
			if _, _, err := w.Append(walTestDigest, []Record{rec}); err != nil {
				t.Errorf("append %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	fsyncs := mWALFsyncs.Value() - before
	if w.Total(walTestDigest) != appends {
		t.Fatalf("Total = %d, want %d", w.Total(walTestDigest), appends)
	}
	if fsyncs >= appends {
		t.Errorf("%d fsyncs for %d concurrent appends — group commit did not batch", fsyncs, appends)
	}
}

// TestWALFailedFlushRecovers: a failed write commits nothing — no records,
// no false durability — and the segment stays usable: dropping the fault
// and retrying the same append succeeds and survives a reopen. This is the
// invariant the serve layer's transient-error retry loop depends on.
func TestWALFailedFlushRecovers(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := fault.Parse("store.write:p=1")
	if err != nil {
		t.Fatal(err)
	}
	fault.Enable(plan)
	rec := Record{Buyer: "retry-me", Value: "42"}
	if _, _, err := w.Append(walTestDigest, []Record{rec}); err == nil {
		fault.Disable()
		t.Fatal("append under store.write:p=1 succeeded")
	}
	if total := w.Total(walTestDigest); total != 0 {
		fault.Disable()
		t.Fatalf("failed append left %d committed records", total)
	}
	fault.Disable()
	added, total, err := w.Append(walTestDigest, []Record{rec})
	if err != nil || added != 1 || total != 1 {
		t.Fatalf("retry after fault: added=%d total=%d err=%v", added, total, err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if got := w2.Records(walTestDigest); len(got) != 1 || got[0] != rec {
		t.Fatalf("replay after retry = %v, want [%+v]", got, rec)
	}
}
