package registrystore

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/registry"
)

// localTmpMarker tags in-progress atomic writes; OpenLocal sweeps leftovers
// (the same discipline internal/serve's design store uses).
const localTmpMarker = ".tmp-"

// Local is the single-node Store: each design's registry is one JSON
// snapshot file (<digest>.registry.json) replaced atomically on every
// Append — temp file, fsync, rename, directory fsync — so a restarted
// daemon only ever observes a complete old or complete new registry. This
// is the historical single-node odcfpd format, unchanged, which is what
// makes switching a deployment between local and cluster mode a
// data-migration step rather than a silent incompatibility.
type Local struct {
	dir string

	mu   sync.Mutex
	seqs map[string]uint64
}

// OpenLocal opens (creating if necessary) a local registry store rooted at
// dir and sweeps temp files left behind by a crash mid-write.
func OpenLocal(dir string) (*Local, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("registrystore: local: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("registrystore: local: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() && strings.Contains(e.Name(), localTmpMarker) &&
			strings.Contains(e.Name(), ".registry.json") {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return nil, fmt.Errorf("registrystore: local: recovering %s: %w", e.Name(), err)
			}
		}
	}
	return &Local{dir: dir, seqs: make(map[string]uint64)}, nil
}

func (l *Local) path(digest string) string {
	return filepath.Join(l.dir, digest+".registry.json")
}

// validDigest rejects digests that could escape the store directory; real
// digests are fixed-width lowercase hex (registry.DesignDigest).
func validDigest(d string) bool {
	if len(d) != 32 {
		return false
	}
	for _, c := range d {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Load reads the design's snapshot, validating it against the analysis. A
// missing file is a fresh empty registry (stored design, nothing issued).
func (l *Local) Load(digest string, a *core.Analysis) (*registry.Registry, uint64, error) {
	if !validDigest(digest) {
		return nil, 0, fmt.Errorf("registrystore: local: invalid digest %q", digest)
	}
	f, err := os.Open(l.path(digest))
	if os.IsNotExist(err) {
		return registry.New(a), l.Seq(digest), nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("registrystore: local: %w", err)
	}
	defer f.Close()
	r, err := registry.Load(f, a)
	if err != nil {
		return nil, 0, fmt.Errorf("registrystore: local: registry %s: %w", digest, err)
	}
	mLoads.Inc()
	return r, l.Seq(digest), nil
}

// Append snapshots reg to the design's registry file. The snapshot always
// carries the full record set, so the durable file stays a superset of
// every acknowledged issuance even when an earlier Append failed after the
// in-memory reservation.
func (l *Local) Append(ctx context.Context, digest string, reg *registry.Registry, recs []Record) (uint64, error) {
	if !validDigest(digest) {
		return 0, fmt.Errorf("registrystore: local: invalid digest %q", digest)
	}
	var b strings.Builder
	if err := reg.Save(&b); err != nil {
		return 0, err
	}
	if err := l.atomicWrite(l.path(digest), []byte(b.String())); err != nil {
		return 0, fmt.Errorf("registrystore: local: registry %s: %w", digest, err)
	}
	mAppends.Inc()
	mRecords.Add(int64(len(recs)))
	l.mu.Lock()
	l.seqs[digest]++
	seq := l.seqs[digest]
	l.mu.Unlock()
	return seq, nil
}

// Seq returns the number of successful Appends this process has made for
// the design. The local store has a single writer (this daemon), so the
// sequence only moves through Append and a loaded registry never goes
// stale underneath its holder.
func (l *Local) Seq(digest string) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seqs[digest]
}

// Close is a no-op: the local store holds no descriptors between writes.
func (l *Local) Close() error { return nil }

// atomicWrite writes data to path via temp file + fsync + rename, honoring
// the store.write / store.fsync fault points exactly like the design store
// — injected failures surface as transient errors the serve layer retries.
func (l *Local) atomicWrite(path string, data []byte) error {
	if err := fault.Err(fault.StoreWrite); err != nil {
		return err
	}
	f, err := os.CreateTemp(l.dir, filepath.Base(path)+localTmpMarker+"*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func() { f.Close(); os.Remove(tmp) }
	if _, err := f.Write(data); err != nil {
		cleanup()
		return err
	}
	fault.Stall(fault.StoreFsync)
	if err := f.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if d, err := os.Open(l.dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
