package registrystore

// Hinted handoff (DESIGN.md §13): when a peer replication fails or times
// out after the local append, the coordinator persists a hint — the design
// digest, the sequence range the peer missed, and the target node — to a
// per-peer hint log, and a background redelivery loop drains the hints with
// backoff once the peer answers again. Convergence after a partition or a
// peer outage therefore no longer waits for organic traffic to the same
// design: the coordinator owes the delivery and keeps trying.
//
// The hint log reuses the WAL's frame machinery: the same CRC-framed
// length-prefixed records (buyer field = design digest, value field =
// "lo-hi" sequence range), the same torn-tail truncation rule at replay.
// Hints only ever instruct an idempotent re-send of records the WAL holds
// durably, so replaying a stale or already-delivered hint is harmless —
// which is why the log can compact lazily (truncate when the queue drains)
// instead of logging per-hint tombstones.

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
)

// hintMagic opens every hint log file.
const hintMagic = "ODCHNT1\n"

// hintRange is the half-open [Lo, Hi) sequence range a peer missed.
type hintRange struct {
	Lo, Hi uint64
}

// hintLog is one peer's durable queue of missed replications.
type hintLog struct {
	node string
	path string

	mu     sync.Mutex
	f      *os.File
	size   int64
	seq    uint64
	pend   map[string]hintRange // digest → merged missed range
	broken error
}

// hintLogPath names a peer's hint log file: a sanitised copy of the node id
// plus a hash suffix (so distinct ids that sanitise alike cannot collide).
func hintLogPath(dir, node string) string {
	san := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_':
			return r
		}
		return '_'
	}, node)
	h := crc32.ChecksumIEEE([]byte(node))
	return filepath.Join(dir, fmt.Sprintf("%s-%08x.hints", san, h))
}

// openHintLog opens (creating if necessary) the peer's hint log and replays
// any hints a previous process left undelivered.
func openHintLog(dir, node string) (*hintLog, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("registrystore: hints: %w", err)
	}
	path := hintLogPath(dir, node)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("registrystore: hints: %w", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("registrystore: hints: %w", err)
	}
	h := &hintLog{node: node, path: path, f: f, pend: make(map[string]hintRange)}
	if len(data) == 0 {
		if _, err := f.Write([]byte(hintMagic)); err == nil {
			err = f.Sync()
		}
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("registrystore: hints: %s: %w", path, err)
		}
		h.size = int64(len(hintMagic))
		return h, nil
	}
	if len(data) < len(hintMagic) || string(data[:len(hintMagic)]) != hintMagic {
		f.Close()
		return nil, fmt.Errorf("registrystore: hints: %s: bad header", path)
	}
	off := int64(len(hintMagic))
	for {
		rec, next, ok := decodeFrame(data, off, h.seq)
		if !ok {
			break
		}
		if digest, rng, perr := parseHint(rec); perr == nil {
			h.merge(digest, rng)
		}
		h.seq++
		off = next
	}
	if off < int64(len(data)) {
		// Torn tail from a crash mid-hint-write: same contract as the WAL.
		if err := f.Truncate(off); err == nil {
			err = f.Sync()
		}
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("registrystore: hints: truncating %s: %w", path, err)
		}
	}
	h.size = off
	return h, nil
}

// parseHint decodes one replayed frame back into (digest, range).
func parseHint(rec Record) (string, hintRange, error) {
	lo, hi, ok := strings.Cut(rec.Value, "-")
	if !validDigest(rec.Buyer) || !ok {
		return "", hintRange{}, fmt.Errorf("registrystore: hints: malformed hint %q=%q", rec.Buyer, rec.Value)
	}
	l, err1 := strconv.ParseUint(lo, 10, 64)
	h, err2 := strconv.ParseUint(hi, 10, 64)
	if err1 != nil || err2 != nil {
		return "", hintRange{}, fmt.Errorf("registrystore: hints: malformed range %q", rec.Value)
	}
	return rec.Buyer, hintRange{Lo: l, Hi: h}, nil
}

// merge widens the digest's pending range; the caller holds mu (or owns
// the log exclusively during replay).
func (h *hintLog) merge(digest string, rng hintRange) {
	if prev, ok := h.pend[digest]; ok {
		if prev.Lo < rng.Lo {
			rng.Lo = prev.Lo
		}
		if prev.Hi > rng.Hi {
			rng.Hi = prev.Hi
		}
	}
	h.pend[digest] = rng
}

// add durably queues a hint: the peer missed the digest's [lo, hi) records.
func (h *hintLog) add(digest string, lo, hi uint64) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	// Merge before any durability check: even when the log file is broken
	// the hint stays queued in memory for this process's lifetime.
	h.merge(digest, hintRange{Lo: lo, Hi: hi})
	if h.broken != nil {
		return h.broken
	}
	frame, err := encodeFrame(h.seq, Record{Buyer: digest, Value: fmt.Sprintf("%d-%d", lo, hi)})
	if err != nil {
		return err
	}
	if _, err := h.f.WriteAt(frame, h.size); err == nil {
		err = h.f.Sync()
	}
	if err != nil {
		// The hint stays queued in memory (redelivery still runs this
		// process's lifetime); the log is too damaged to extend further.
		h.broken = fmt.Errorf("registrystore: hints: %s: %w", h.path, err)
		return h.broken
	}
	h.size += int64(len(frame))
	h.seq++
	return nil
}

// pending snapshots the undelivered hints.
func (h *hintLog) pending() map[string]hintRange {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]hintRange, len(h.pend))
	for d, r := range h.pend {
		out[d] = r
	}
	return out
}

// pendingCount returns how many designs have undelivered hints.
func (h *hintLog) pendingCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.pend)
}

// clear marks the digest's hints delivered, compacting the log file back to
// its header once the whole queue is empty. (Hints cleared while others
// remain stay on disk until then; replaying an already-delivered hint after
// a restart is an idempotent no-op re-send.)
func (h *hintLog) clear(digest string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.pend, digest)
	if len(h.pend) != 0 || h.broken != nil || h.size == int64(len(hintMagic)) {
		return
	}
	if err := h.f.Truncate(int64(len(hintMagic))); err == nil {
		err = h.f.Sync()
	} else {
		h.broken = fmt.Errorf("registrystore: hints: compacting %s: %w", h.path, err)
		return
	}
	h.size = int64(len(hintMagic))
	h.seq = 0
}

// close releases the log file.
func (h *hintLog) close() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.broken == nil {
		h.broken = fmt.Errorf("registrystore: hints: closed")
	}
	return h.f.Close()
}
