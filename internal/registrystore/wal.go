package registrystore

// The write-ahead log behind the replicated registry store: one append-only
// segment file per design digest, holding CRC-framed issuance records.
// DESIGN.md §13 documents the byte layout; the invariants that matter here:
//
//   - A record is durable only after its frame is written AND fsynced.
//     Group commit batches concurrent appends to one segment into a single
//     fsync: every waiter is released only once the sync that covers its
//     frames has returned.
//   - The segment is an append-only set keyed by buyer: appending a buyer
//     already present (with the same value) is a no-op, so replicated
//     appends, catch-up re-sends and crash-retry re-appends are all
//     idempotent, and two nodes' segments converge by record union.
//   - On open, a torn tail — a partial or CRC-corrupt final frame from a
//     crash mid-write — is truncated away; everything before it is intact
//     because frames are written strictly in order.

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/fault"
)

// walMagic opens every segment file; a version bump changes the final byte.
const walMagic = "ODCWAL1\n"

// walHeaderSize is the segment header: 8 magic bytes + the 16 raw bytes of
// the design digest (32 lowercase hex characters decoded).
const walHeaderSize = 8 + 16

// walFrameOverhead is the fixed prefix of one record frame: u32 payload
// length + u32 CRC.
const walFrameOverhead = 8

// walMaxPayload bounds a single frame's payload; anything larger on disk is
// treated as corruption (real payloads are a buyer name plus a decimal
// fingerprint — hundreds of bytes).
const walMaxPayload = 1 << 20

// walSuffix names segment files: <digest>.wal under the WAL directory.
const walSuffix = ".wal"

// WAL is a directory of per-design segments. It is safe for concurrent use;
// appends to the same segment are group-committed.
type WAL struct {
	dir string

	mu       sync.Mutex
	segments map[string]*segment
	closed   bool
}

// walBatch is one Append's not-yet-durable frames.
type walBatch struct {
	frames []byte
	recs   []Record
}

// segment is one design's open WAL file plus its in-memory replay: the
// committed record list, the buyer index used for idempotent dedup, and the
// group-commit queue.
type segment struct {
	mu      sync.Mutex
	f       *os.File
	path    string // segment file path (scrub rebuilds swap it atomically)
	digest  string
	size    int64 // durable byte size (frames beyond it are not yet synced)
	recs    []Record
	byBuyer map[string]string // committed buyer → value
	pending map[string]string // enqueued-but-unsynced buyer → value

	batches  []*walBatch
	waiters  []chan error
	flushing bool
	broken   error // set on an unrecoverable write/truncate failure
}

// OpenWAL opens (creating if necessary) a WAL directory, replays every
// existing segment into memory and truncates torn tails left by a crash.
func OpenWAL(dir string) (*WAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("registrystore: wal: %w", err)
	}
	w := &WAL{dir: dir, segments: make(map[string]*segment)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("registrystore: wal: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, walSuffix) {
			continue
		}
		digest := strings.TrimSuffix(name, walSuffix)
		if !validDigest(digest) {
			continue
		}
		seg, err := openSegment(filepath.Join(dir, name), digest)
		if err != nil {
			return nil, err
		}
		w.segments[digest] = seg
	}
	return w, nil
}

// segmentFor returns (creating if needed) the digest's open segment.
func (w *WAL) segmentFor(digest string) (*segment, error) {
	if !validDigest(digest) {
		return nil, fmt.Errorf("registrystore: wal: invalid digest %q", digest)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil, fmt.Errorf("registrystore: wal: closed")
	}
	if seg, ok := w.segments[digest]; ok {
		return seg, nil
	}
	seg, err := createSegment(filepath.Join(w.dir, digest+walSuffix), w.dir, digest)
	if err != nil {
		return nil, err
	}
	w.segments[digest] = seg
	return seg, nil
}

// Append durably records every rec not already present in the digest's
// segment and returns how many were fresh plus the segment's new total.
// A buyer already recorded with the same value is skipped (idempotent);
// the same buyer with a different value is corruption and errors without
// touching the segment. Append returns only after the fsync covering its
// frames — or, when every record was a duplicate, immediately.
func (w *WAL) Append(digest string, recs []Record) (added int, total uint64, err error) {
	seg, err := w.segmentFor(digest)
	if err != nil {
		return 0, 0, err
	}
	return seg.append(recs)
}

// Records returns a copy of the digest's committed records in append order.
// Unknown digests yield nil.
func (w *WAL) Records(digest string) []Record {
	w.mu.Lock()
	seg := w.segments[digest]
	w.mu.Unlock()
	if seg == nil {
		return nil
	}
	seg.mu.Lock()
	defer seg.mu.Unlock()
	return append([]Record(nil), seg.recs...)
}

// Total returns the digest's committed record count.
func (w *WAL) Total(digest string) uint64 {
	w.mu.Lock()
	seg := w.segments[digest]
	w.mu.Unlock()
	if seg == nil {
		return 0
	}
	seg.mu.Lock()
	defer seg.mu.Unlock()
	return uint64(len(seg.recs))
}

// Digests lists every digest with an open segment, sorted.
func (w *WAL) Digests() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]string, 0, len(w.segments))
	for d := range w.segments {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// Close closes every segment file. In-flight appends fail.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	var first error
	for _, seg := range w.segments {
		seg.mu.Lock()
		if seg.broken == nil {
			seg.broken = fmt.Errorf("registrystore: wal: closed")
		}
		if err := seg.f.Close(); err != nil && first == nil {
			first = err
		}
		seg.mu.Unlock()
	}
	return first
}

// createSegment creates a fresh segment file with its header durably on
// disk (file and directory both fsynced) before any record lands.
func createSegment(path, dir, digest string) (*segment, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if os.IsExist(err) {
		return openSegment(path, digest)
	}
	if err != nil {
		return nil, fmt.Errorf("registrystore: wal: %w", err)
	}
	hdr := segmentHeader(digest)
	if _, err := f.Write(hdr); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("registrystore: wal: %s: %w", path, err)
	}
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return &segment{
		f: f, path: path, digest: digest, size: int64(len(hdr)),
		byBuyer: make(map[string]string), pending: make(map[string]string),
	}, nil
}

// segmentHeader renders the 24-byte header for a digest.
func segmentHeader(digest string) []byte {
	raw, _ := hex.DecodeString(digest) // validDigest guarantees 32 hex chars
	return append([]byte(walMagic), raw...)
}

// openSegment opens an existing segment, replays its records and truncates
// any torn tail a crash left behind.
func openSegment(path, digest string) (*segment, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("registrystore: wal: %w", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("registrystore: wal: %w", err)
	}
	want := segmentHeader(digest)
	if len(data) < walHeaderSize || string(data[:walHeaderSize]) != string(want) {
		f.Close()
		return nil, fmt.Errorf("registrystore: wal: %s: bad segment header", path)
	}
	seg := &segment{
		f:       f,
		path:    path,
		digest:  digest,
		byBuyer: make(map[string]string),
		pending: make(map[string]string),
	}
	off := int64(walHeaderSize)
	for {
		rec, next, ok := decodeFrame(data, off, uint64(len(seg.recs)))
		if !ok {
			break
		}
		seg.recs = append(seg.recs, rec)
		seg.byBuyer[rec.Buyer] = rec.Value
		off = next
	}
	if off < int64(len(data)) {
		// Garbage at off. Distinguish mid-file corruption (CRC-valid frames
		// survive beyond the bad region — a bit flip in a committed frame)
		// from the classic torn tail (a partial final frame from a crash).
		if salvaged := salvageFrames(data, off+1, seg.byBuyer); len(salvaged) > 0 {
			// Mid-file corruption: quarantine the damaged bytes and rebuild
			// the segment from everything that still authenticates. Records
			// inside the corrupt region are gone locally; the replicated
			// store re-fetches them from the peers (startup Sync / scrubber).
			mScrubSalvages.Inc()
			mScrubRestored.Add(int64(len(salvaged)))
			for _, rec := range salvaged {
				seg.recs = append(seg.recs, rec)
				seg.byBuyer[rec.Buyer] = rec.Value
			}
			f.Close()
			nf, size, err := rebuildSegmentFile(path, digest, seg.recs)
			if err != nil {
				return nil, err
			}
			seg.f, seg.size = nf, size
			return seg, nil
		}
		// Torn tail: everything from off on is garbage. The records before
		// it are intact (frames are written in order), so truncating is
		// exactly the crash-recovery contract.
		mWALTruncs.Inc()
		if err := f.Truncate(off); err != nil {
			f.Close()
			return nil, fmt.Errorf("registrystore: wal: truncating torn tail of %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("registrystore: wal: %s: %w", path, err)
		}
	}
	seg.size = off
	return seg, nil
}

// salvageFrames byte-scans data from off for CRC-valid frames past a
// corrupt region, skipping buyers already recovered (and conflicting
// duplicates, which cannot occur in an authentic segment). The sequence
// check is waived — the rebuild reassigns sequence numbers — but the CRC
// still authenticates every salvaged record.
func salvageFrames(data []byte, off int64, have map[string]string) []Record {
	var out []Record
	seen := make(map[string]bool)
	for p := off; p+walFrameOverhead <= int64(len(data)); p++ {
		rec, next, ok := decodeFrameLoose(data, p)
		if !ok {
			continue
		}
		if _, dup := have[rec.Buyer]; !dup && !seen[rec.Buyer] {
			out = append(out, rec)
			seen[rec.Buyer] = true
		}
		p = next - 1 // resume right after the valid frame
	}
	return out
}

// decodeFrameLoose parses a frame at off without the sequence check —
// the salvage scanner's probe. CRC and length sanity still apply.
func decodeFrameLoose(data []byte, off int64) (rec Record, next int64, ok bool) {
	if off+walFrameOverhead > int64(len(data)) {
		return rec, 0, false
	}
	plen := binary.LittleEndian.Uint32(data[off:])
	crc := binary.LittleEndian.Uint32(data[off+4:])
	if plen < 12 || plen > walMaxPayload || off+walFrameOverhead+int64(plen) > int64(len(data)) {
		return rec, 0, false
	}
	payload := data[off+walFrameOverhead : off+walFrameOverhead+int64(plen)]
	if crc32.ChecksumIEEE(payload) != crc {
		return rec, 0, false
	}
	blen := binary.LittleEndian.Uint16(payload[8:])
	vlen := binary.LittleEndian.Uint16(payload[10:])
	if int(blen)+int(vlen)+12 != int(plen) {
		return rec, 0, false
	}
	rec.Buyer = string(payload[12 : 12+blen])
	rec.Value = string(payload[12+int(blen) : 12+int(blen)+int(vlen)])
	return rec, off + walFrameOverhead + int64(plen), true
}

// rebuildSegmentFile replaces the segment file at path with a freshly
// framed copy of recs, quarantining the previous bytes at path+".corrupt".
// The write is crash-safe: the rebuild lands fully fsynced under a temp
// name, then two renames swap it in — a crash mid-swap leaves either the
// corrupt original (rebuilt again next open) or the complete rebuild.
func rebuildSegmentFile(path, digest string, recs []Record) (*os.File, int64, error) {
	tmp := path + ".rebuild"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("registrystore: wal: rebuild %s: %w", path, err)
	}
	buf := segmentHeader(digest)
	for i, rec := range recs {
		frame, ferr := encodeFrame(uint64(i), rec)
		if ferr != nil {
			f.Close()
			os.Remove(tmp)
			return nil, 0, ferr
		}
		buf = append(buf, frame...)
	}
	if _, err := f.Write(buf); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, 0, fmt.Errorf("registrystore: wal: rebuild %s: %w", path, err)
	}
	if err := os.Rename(path, path+".corrupt"); err != nil && !os.IsNotExist(err) {
		f.Close()
		os.Remove(tmp)
		return nil, 0, fmt.Errorf("registrystore: wal: quarantining %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("registrystore: wal: rebuild %s: %w", path, err)
	}
	if d, derr := os.Open(filepath.Dir(path)); derr == nil {
		d.Sync()
		d.Close()
	}
	return f, int64(len(buf)), nil
}

// decodeFrame parses one frame at off. ok is false on a torn, corrupt or
// out-of-sequence frame — the caller truncates from off.
func decodeFrame(data []byte, off int64, wantSeq uint64) (rec Record, next int64, ok bool) {
	if off+walFrameOverhead > int64(len(data)) {
		return rec, 0, false
	}
	plen := binary.LittleEndian.Uint32(data[off:])
	crc := binary.LittleEndian.Uint32(data[off+4:])
	if plen < 12 || plen > walMaxPayload || off+walFrameOverhead+int64(plen) > int64(len(data)) {
		return rec, 0, false
	}
	payload := data[off+walFrameOverhead : off+walFrameOverhead+int64(plen)]
	if crc32.ChecksumIEEE(payload) != crc {
		return rec, 0, false
	}
	seq := binary.LittleEndian.Uint64(payload)
	blen := binary.LittleEndian.Uint16(payload[8:])
	vlen := binary.LittleEndian.Uint16(payload[10:])
	if seq != wantSeq || int(blen)+int(vlen)+12 != int(plen) {
		return rec, 0, false
	}
	rec.Buyer = string(payload[12 : 12+blen])
	rec.Value = string(payload[12+int(blen) : 12+int(blen)+int(vlen)])
	return rec, off + walFrameOverhead + int64(plen), true
}

// encodeFrame renders one record at seq as a framed byte string.
func encodeFrame(seq uint64, rec Record) ([]byte, error) {
	if len(rec.Buyer) > 0xffff || len(rec.Value) > 0xffff {
		return nil, fmt.Errorf("registrystore: wal: record too large (buyer %d bytes, value %d bytes)",
			len(rec.Buyer), len(rec.Value))
	}
	plen := 12 + len(rec.Buyer) + len(rec.Value)
	frame := make([]byte, walFrameOverhead+plen)
	payload := frame[walFrameOverhead:]
	binary.LittleEndian.PutUint64(payload, seq)
	binary.LittleEndian.PutUint16(payload[8:], uint16(len(rec.Buyer)))
	binary.LittleEndian.PutUint16(payload[10:], uint16(len(rec.Value)))
	copy(payload[12:], rec.Buyer)
	copy(payload[12+len(rec.Buyer):], rec.Value)
	binary.LittleEndian.PutUint32(frame, uint32(plen))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	return frame, nil
}

// append enqueues the fresh subset of recs and waits for the group commit
// that makes them durable.
func (s *segment) append(recs []Record) (added int, total uint64, err error) {
	s.mu.Lock()
	if s.broken != nil {
		err := s.broken
		s.mu.Unlock()
		return 0, 0, err
	}
	var batch *walBatch
	mustWait := false
	seq := uint64(len(s.recs) + len(s.pending))
	for _, rec := range recs {
		if prev, ok := s.byBuyer[rec.Buyer]; ok {
			if prev != rec.Value {
				s.mu.Unlock()
				return 0, 0, fmt.Errorf("registrystore: wal: conflicting record for %q", rec.Buyer)
			}
			continue // already durable
		}
		if prev, ok := s.pending[rec.Buyer]; ok {
			if prev != rec.Value {
				s.mu.Unlock()
				return 0, 0, fmt.Errorf("registrystore: wal: conflicting record for %q", rec.Buyer)
			}
			mustWait = true // enqueued by a concurrent append; wait for its sync
			continue
		}
		frame, ferr := encodeFrame(seq, rec)
		if ferr != nil {
			s.mu.Unlock()
			return 0, 0, ferr
		}
		if batch == nil {
			batch = &walBatch{}
		}
		batch.frames = append(batch.frames, frame...)
		batch.recs = append(batch.recs, rec)
		s.pending[rec.Buyer] = rec.Value
		seq++
		added++
	}
	if batch == nil && !mustWait {
		total = uint64(len(s.recs))
		s.mu.Unlock()
		return 0, total, nil
	}
	if batch != nil {
		s.batches = append(s.batches, batch)
	}
	done := make(chan error, 1)
	s.waiters = append(s.waiters, done)
	if !s.flushing {
		s.flushing = true
		go s.flush()
	}
	s.mu.Unlock()

	if err := <-done; err != nil {
		return 0, 0, err
	}
	s.mu.Lock()
	total = uint64(len(s.recs))
	s.mu.Unlock()
	mRecords.Add(int64(added))
	return added, total, nil
}

// flush is the group committer: it drains the batch queue, writes every
// queued frame, fsyncs once, and releases every waiter that sync covered.
// One flush goroutine runs per segment at a time; appends that arrive while
// a sync is in flight batch into the next round.
func (s *segment) flush() {
	for {
		s.mu.Lock()
		if len(s.batches) == 0 && len(s.waiters) == 0 {
			s.flushing = false
			s.mu.Unlock()
			return
		}
		batches := s.batches
		waiters := s.waiters
		s.batches, s.waiters = nil, nil
		size := s.size
		s.mu.Unlock()

		var frames []byte
		for _, b := range batches {
			frames = append(frames, b.frames...)
		}
		err := fault.Err(fault.StoreWrite)
		wrote := false
		if err == nil && len(frames) > 0 {
			_, err = s.f.WriteAt(frames, size)
			wrote = err == nil
			if err == nil {
				fault.Stall(fault.StoreFsync)
				err = s.f.Sync()
			}
		}
		mWALFsyncs.Inc()

		s.mu.Lock()
		if err == nil {
			s.size = size + int64(len(frames))
			for _, b := range batches {
				for _, rec := range b.recs {
					s.recs = append(s.recs, rec)
					s.byBuyer[rec.Buyer] = rec.Value
					delete(s.pending, rec.Buyer)
				}
			}
		} else {
			// Failed batches leave no in-memory trace; if bytes may have
			// reached the file, cut them back so the next append's frames
			// land at a clean offset (a torn tail would also be cut on the
			// next open — this keeps the running process consistent too).
			for _, b := range batches {
				for _, rec := range b.recs {
					delete(s.pending, rec.Buyer)
				}
			}
			if wrote {
				if terr := s.f.Truncate(size); terr != nil {
					s.broken = fmt.Errorf("registrystore: wal: segment unusable after failed truncate: %v (write error: %w)", terr, err)
				}
			}
		}
		s.mu.Unlock()
		for _, done := range waiters {
			done <- err
		}
	}
}
