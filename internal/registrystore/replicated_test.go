package registrystore

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

const replTestDigest = "ffeeddccbbaa99887766554433221100"

// fakeTransport backs each peer with a real WAL, so replication tests
// exercise the same union/dedup semantics the HTTP transport reaches.
type fakeTransport struct {
	mu    sync.Mutex
	peers map[string]*WAL
	down  map[string]bool
	// fullSends counts Replicate calls per node whose record list was
	// longer than one append's worth — the catch-up re-send signature.
	sends map[string][]int
}

func newFakeTransport(t *testing.T, nodes ...string) *fakeTransport {
	ft := &fakeTransport{
		peers: make(map[string]*WAL),
		down:  make(map[string]bool),
		sends: make(map[string][]int),
	}
	for _, n := range nodes {
		w, err := OpenWAL(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Close() })
		ft.peers[n] = w
	}
	return ft
}

func (ft *fakeTransport) setDown(node string, down bool) {
	ft.mu.Lock()
	ft.down[node] = down
	ft.mu.Unlock()
}

func (ft *fakeTransport) Replicate(ctx context.Context, node, digest string, recs []Record, total uint64) (uint64, error) {
	ft.mu.Lock()
	down := ft.down[node]
	ft.sends[node] = append(ft.sends[node], len(recs))
	w := ft.peers[node]
	ft.mu.Unlock()
	if down {
		return 0, errors.New("peer down")
	}
	_, pt, err := w.Append(digest, recs)
	return pt, err
}

func (ft *fakeTransport) Fetch(ctx context.Context, node, digest string) ([]Record, error) {
	ft.mu.Lock()
	down := ft.down[node]
	w := ft.peers[node]
	ft.mu.Unlock()
	if down {
		return nil, errors.New("peer down")
	}
	return w.Records(digest), nil
}

func openTestReplicated(t *testing.T, ft *fakeTransport, self string, nodes []string, w int) *Replicated {
	t.Helper()
	r, err := OpenReplicated(ReplicatedConfig{
		Dir: t.TempDir(), Self: self, Nodes: nodes, W: w,
		Transport: ft, AckTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestReplicatedQuorumAck: a W=2 append over three nodes acknowledges and
// every peer — not just the quorum — ends up holding the records.
func TestReplicatedQuorumAck(t *testing.T) {
	nodes := []string{"n1", "n2", "n3"}
	ft := newFakeTransport(t, "n2", "n3")
	r := openTestReplicated(t, ft, "n1", nodes, 2)

	recs := []Record{{Buyer: "alice", Value: "101"}, {Buyer: "bob", Value: "202"}}
	total, err := r.Append(context.Background(), replTestDigest, nil, recs)
	if err != nil {
		t.Fatal(err)
	}
	if total != 2 || r.Total(replTestDigest) != 2 {
		t.Fatalf("total = %d (local %d), want 2", total, r.Total(replTestDigest))
	}
	// The quorum covers self + one peer; stragglers catch up in the
	// background under the ack timeout.
	for _, n := range []string{"n2", "n3"} {
		waitFor(t, n+" replication", func() bool { return ft.peers[n].Total(replTestDigest) == 2 })
	}
}

// TestReplicatedQuorumFailure: with every peer down a W=2 append fails with
// a transient error (the serve retry loop may re-drive it), but the records
// stay durable locally — an acknowledged superset is always legal.
func TestReplicatedQuorumFailure(t *testing.T) {
	nodes := []string{"n1", "n2", "n3"}
	ft := newFakeTransport(t, "n2", "n3")
	ft.setDown("n2", true)
	ft.setDown("n3", true)
	r := openTestReplicated(t, ft, "n1", nodes, 2)

	recs := []Record{{Buyer: "alice", Value: "101"}}
	_, err := r.Append(context.Background(), replTestDigest, nil, recs)
	if err == nil {
		t.Fatal("append with all peers down reached its quorum")
	}
	var tr interface{ Transient() bool }
	if !errors.As(err, &tr) || !tr.Transient() {
		t.Fatalf("quorum failure %v is not transient", err)
	}
	if r.Total(replTestDigest) != 1 {
		t.Fatalf("local total = %d, want 1 (locally durable despite quorum failure)", r.Total(replTestDigest))
	}

	// Peers recover; the retried append is idempotent and now acknowledges.
	ft.setDown("n2", false)
	ft.setDown("n3", false)
	total, err := r.Append(context.Background(), replTestDigest, nil, recs)
	if err != nil || total != 1 {
		t.Fatalf("retried append: total=%d err=%v", total, err)
	}
}

// TestReplicatedCatchupResend: a peer that missed earlier appends (it
// restarted empty) acks with a lower total; the sender responds by
// re-sending its full record list in the same ack window, so the peer is
// complete before the append even returns.
func TestReplicatedCatchupResend(t *testing.T) {
	nodes := []string{"n1", "n2"}
	ft := newFakeTransport(t, "n2")
	r := openTestReplicated(t, ft, "n1", nodes, 2)

	// Seed history the peer never saw (as if it was down for two appends).
	if _, _, err := r.wal.Append(replTestDigest, []Record{
		{Buyer: "old-1", Value: "1"}, {Buyer: "old-2", Value: "2"},
	}); err != nil {
		t.Fatal(err)
	}

	total, err := r.Append(context.Background(), replTestDigest, nil,
		[]Record{{Buyer: "new-3", Value: "3"}})
	if err != nil || total != 3 {
		t.Fatalf("append: total=%d err=%v", total, err)
	}
	waitFor(t, "peer catch-up", func() bool { return ft.peers["n2"].Total(replTestDigest) == 3 })
	got := ft.peers["n2"].Records(replTestDigest)
	want := map[string]string{"old-1": "1", "old-2": "2", "new-3": "3"}
	for _, rec := range got {
		if want[rec.Buyer] != rec.Value {
			t.Fatalf("peer record %+v unexpected (all: %v)", rec, got)
		}
		delete(want, rec.Buyer)
	}
	if len(want) != 0 {
		t.Fatalf("peer missing records %v after catch-up", want)
	}
}

// TestReplicatedPullWhenBehind: a peer's ack reveals it holds records this
// node lacks; the node pulls them in the background and the segments
// converge by union.
func TestReplicatedPullWhenBehind(t *testing.T) {
	nodes := []string{"n1", "n2"}
	ft := newFakeTransport(t, "n2")
	r := openTestReplicated(t, ft, "n1", nodes, 2)

	// The peer already holds three records this node never saw.
	if _, _, err := ft.peers["n2"].Append(replTestDigest, []Record{
		{Buyer: "p-1", Value: "1"}, {Buyer: "p-2", Value: "2"}, {Buyer: "p-3", Value: "3"},
	}); err != nil {
		t.Fatal(err)
	}

	if _, err := r.Append(context.Background(), replTestDigest, nil,
		[]Record{{Buyer: "mine", Value: "9"}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "behind-pull union", func() bool { return r.Total(replTestDigest) == 4 })
}

// TestReplicatedSyncAdopts: startup Sync pulls a digest's records from the
// peers — the restarted-follower path — and skips dead peers rather than
// blocking recovery.
func TestReplicatedSyncAdopts(t *testing.T) {
	nodes := []string{"n1", "n2", "n3"}
	ft := newFakeTransport(t, "n2", "n3")
	ft.setDown("n3", true)
	r := openTestReplicated(t, ft, "n1", nodes, 2)

	if _, _, err := ft.peers["n2"].Append(replTestDigest, []Record{
		{Buyer: "s-1", Value: "1"}, {Buyer: "s-2", Value: "2"},
	}); err != nil {
		t.Fatal(err)
	}
	adopted, err := r.Sync(context.Background(), []string{replTestDigest})
	if err != nil {
		t.Fatal(err)
	}
	if adopted != 2 || r.Total(replTestDigest) != 2 {
		t.Fatalf("Sync adopted %d (local total %d), want 2", adopted, r.Total(replTestDigest))
	}
	// A second sync is a no-op: everything dedups.
	adopted, err = r.Sync(context.Background(), []string{replTestDigest})
	if err != nil || adopted != 0 {
		t.Fatalf("second Sync adopted %d err=%v, want 0, nil", adopted, err)
	}
}
