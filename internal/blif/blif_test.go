package blif

import (
	"bytes"
	"strings"
	"testing"
)

const sample = `
# A small sample model
.model ex1
.inputs a b c \
        d
.outputs f g
.names a b t1
11 1
.names t1 c d f
1-- 1
-11 1
.names c g   # inverter
0 1
.end
`

func TestParseSample(t *testing.T) {
	n, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if n.Model != "ex1" {
		t.Errorf("model = %q", n.Model)
	}
	if len(n.Inputs) != 4 || n.Inputs[3] != "d" {
		t.Errorf("inputs = %v (continuation line mishandled?)", n.Inputs)
	}
	if len(n.Outputs) != 2 {
		t.Errorf("outputs = %v", n.Outputs)
	}
	if len(n.Nodes) != 3 {
		t.Fatalf("nodes = %v", n.SortedNodeNames())
	}
	t1 := n.Nodes[0]
	if t1.Name != "t1" || len(t1.Covers) != 1 || t1.Covers[0].Inputs != "11" {
		t.Errorf("t1 = %+v", t1)
	}
	f := n.Nodes[1]
	if f.Name != "f" || len(f.Covers) != 2 {
		t.Errorf("f = %+v", f)
	}
	g := n.Nodes[2]
	if g.Name != "g" || g.Covers[0].Inputs != "0" || g.Covers[0].Output != '1' {
		t.Errorf("g = %+v", g)
	}
}

func TestRoundTrip(t *testing.T) {
	n, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, n); err != nil {
		t.Fatal(err)
	}
	n2, err := Parse(&buf)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	if n2.Model != n.Model || len(n2.Nodes) != len(n.Nodes) ||
		len(n2.Inputs) != len(n.Inputs) || len(n2.Outputs) != len(n.Outputs) {
		t.Fatalf("round trip changed shape: %+v vs %+v", n2, n)
	}
	for i := range n.Nodes {
		a, b := n.Nodes[i], n2.Nodes[i]
		if a.Name != b.Name || len(a.Covers) != len(b.Covers) {
			t.Errorf("node %d changed: %+v vs %+v", i, a, b)
		}
		for j := range a.Covers {
			if a.Covers[j] != b.Covers[j] {
				t.Errorf("cover %d/%d changed", i, j)
			}
		}
	}
}

func TestConstNodes(t *testing.T) {
	src := `
.model consts
.inputs a
.outputs z o u
.names z
.names o
1
.names a u
1 1
.end
`
	n, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := n.Nodes[0].IsConst(); !ok || v {
		t.Errorf("z should be const 0, got %v %v", v, ok)
	}
	if v, ok := n.Nodes[1].IsConst(); !ok || !v {
		t.Errorf("o should be const 1, got %v %v", v, ok)
	}
	if _, ok := n.Nodes[2].IsConst(); ok {
		t.Error("u is not a constant")
	}
	// Round-trip constants.
	var buf bytes.Buffer
	if err := Write(&buf, n); err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(&buf); err != nil {
		t.Fatalf("reparse consts: %v", err)
	}
}

func TestManyInputsWrapped(t *testing.T) {
	// Writer wraps long signal lists with continuations; parser must rejoin.
	n := &Netlist{Model: "wide", Outputs: []string{"y"}}
	for i := 0; i < 25; i++ {
		n.Inputs = append(n.Inputs, "in"+string(rune('a'+i%26))+string(rune('0'+i/26)))
	}
	n.Nodes = []Node{{Name: "y", Inputs: []string{n.Inputs[0]}, Covers: []Cover{{Inputs: "1", Output: '1'}}}}
	var buf bytes.Buffer
	if err := Write(&buf, n); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\\") {
		t.Error("expected continuation in wrapped input list")
	}
	n2, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(n2.Inputs) != 25 {
		t.Errorf("reparsed %d inputs, want 25", len(n2.Inputs))
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"latch":          ".model m\n.inputs a\n.outputs q\n.latch a q\n.end",
		"no inputs":      ".model m\n.outputs q\n.names q\n.end",
		"no outputs":     ".model m\n.inputs a\n.end",
		"bad literal":    ".model m\n.inputs a\n.outputs q\n.names a q\n2 1\n.end",
		"bad output bit": ".model m\n.inputs a\n.outputs q\n.names a q\n1 x\n.end",
		"width mismatch": ".model m\n.inputs a b\n.outputs q\n.names a b q\n1 1\n.end",
		"mixed phase":    ".model m\n.inputs a b\n.outputs q\n.names a b q\n11 1\n00 0\n.end",
		"undefined sig":  ".model m\n.inputs a\n.outputs q\n.names zz q\n1 1\n.end",
		"undefined out":  ".model m\n.inputs a\n.outputs q\n.names a t\n1 1\n.end",
		"double def":     ".model m\n.inputs a\n.outputs q\n.names a q\n1 1\n.names a q\n0 1\n.end",
		"stray cover":    ".model m\n.inputs a\n.outputs q\n11 1\n.names a q\n1 1\n.end",
		"names bare":     ".model m\n.inputs a\n.outputs q\n.names\n.end",
		"const two tok":  ".model m\n.inputs a\n.outputs q\n.names q\n1 1\n.end",
	}
	for name, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted invalid BLIF", name)
		}
	}
}

func TestUnknownDirectiveIgnored(t *testing.T) {
	src := ".model m\n.inputs a\n.outputs q\n.default_input_arrival 0 0\n.names a q\n1 1\n.end"
	if _, err := Parse(strings.NewReader(src)); err != nil {
		t.Fatalf("unknown directive should be ignored: %v", err)
	}
}

func TestMissingEnd(t *testing.T) {
	src := ".model m\n.inputs a\n.outputs q\n.names a q\n1 1\n"
	n, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatalf("EOF without .end should be tolerated: %v", err)
	}
	if len(n.Nodes) != 1 {
		t.Error("node lost")
	}
}
