package blif

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse exercises the BLIF reader on arbitrary input: it must never
// panic, and anything it accepts must survive a write/re-parse round trip
// with the same shape.
func FuzzParse(f *testing.F) {
	f.Add(sample)
	f.Add(".model m\n.inputs a\n.outputs q\n.names a q\n1 1\n.end\n")
	f.Add(".model m\n.inputs a b\n.outputs q\n.names a b q\n11 1\n00 1\n.end\n")
	f.Add(".model m\n.inputs a\n.outputs q\n.names q\n1\n.end\n")
	f.Add(".model x\n.inputs a \\\nb\n.outputs q\n.names a b q\n-1 0\n.end")
	f.Add("# nothing but comments\n")
	f.Add(".latch a b\n")
	f.Fuzz(func(t *testing.T, src string) {
		n, err := Parse(strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, n); err != nil {
			t.Fatalf("accepted netlist failed to serialise: %v", err)
		}
		n2, err := Parse(&buf)
		if err != nil {
			t.Fatalf("own output rejected: %v\n%s", err, buf.String())
		}
		if len(n2.Inputs) != len(n.Inputs) || len(n2.Outputs) != len(n.Outputs) || len(n2.Nodes) != len(n.Nodes) {
			t.Fatalf("round trip changed shape: %d/%d/%d vs %d/%d/%d",
				len(n.Inputs), len(n.Outputs), len(n.Nodes),
				len(n2.Inputs), len(n2.Outputs), len(n2.Nodes))
		}
	})
}
