// Package blif reads and writes the Berkeley Logic Interchange Format
// subset used by the MCNC/ISCAS benchmark suites: .model, .inputs,
// .outputs, .names (two-level SOP covers) and .end, with continuation
// lines. Latches and subcircuits are rejected — the paper's flow is purely
// combinational.
//
// A parsed BLIF is returned as a Netlist of SOP nodes; internal/techmap
// lowers it onto the standard-cell circuit representation.
package blif

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Cover is one row of a .names table: input literals ('0', '1', '-') and
// the output value ('0' or '1'). All rows of a node share the same output
// phase in well-formed MCNC benchmarks; mixed phases are rejected.
type Cover struct {
	Inputs string
	Output byte
}

// Node is a named logic node defined by a .names construct.
type Node struct {
	Name   string
	Inputs []string
	Covers []Cover
}

// IsConst reports whether the node is a constant (no inputs). Value is the
// constant it produces: a .names with no cover rows is constant 0; a single
// empty row with output '1' is constant 1.
func (n *Node) IsConst() (value bool, ok bool) {
	if len(n.Inputs) != 0 {
		return false, false
	}
	if len(n.Covers) == 0 {
		return false, true
	}
	return n.Covers[0].Output == '1', true
}

// Netlist is a parsed combinational BLIF model.
type Netlist struct {
	Model   string
	Inputs  []string
	Outputs []string
	Nodes   []Node
}

// Parse reads a BLIF model from r. Only the first .model in the stream is
// parsed; the combinational subset is enforced.
func Parse(r io.Reader) (*Netlist, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	n := &Netlist{}
	var cur *Node
	lineNo := 0
	seenModel := false

	flush := func() {
		if cur != nil {
			n.Nodes = append(n.Nodes, *cur)
			cur = nil
		}
	}

	// Read logical lines, joining '\' continuations.
	readLine := func() (string, bool) {
		for sc.Scan() {
			lineNo++
			line := sc.Text()
			if i := strings.Index(line, "#"); i >= 0 {
				line = line[:i]
			}
			line = strings.TrimSpace(line)
			if line == "" {
				continue
			}
			for strings.HasSuffix(line, "\\") {
				line = strings.TrimSuffix(line, "\\")
				if !sc.Scan() {
					break
				}
				lineNo++
				next := sc.Text()
				if i := strings.Index(next, "#"); i >= 0 {
					next = next[:i]
				}
				line += " " + strings.TrimSpace(next)
			}
			// A lone continuation backslash (possibly at EOF) can join to
			// nothing; skip it rather than emit an empty line.
			if line = strings.TrimSpace(line); line == "" {
				continue
			}
			return line, true
		}
		return "", false
	}

	for {
		line, ok := readLine()
		if !ok {
			break
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case ".model":
			if seenModel {
				flush()
				return finish(n)
			}
			seenModel = true
			if len(fields) > 1 {
				n.Model = fields[1]
			}
		case ".inputs":
			n.Inputs = append(n.Inputs, fields[1:]...)
		case ".outputs":
			n.Outputs = append(n.Outputs, fields[1:]...)
		case ".names":
			flush()
			if len(fields) < 2 {
				return nil, fmt.Errorf("blif line %d: .names without signals", lineNo)
			}
			cur = &Node{
				Name:   fields[len(fields)-1],
				Inputs: append([]string(nil), fields[1:len(fields)-1]...),
			}
		case ".end":
			flush()
			return finish(n)
		case ".latch", ".subckt", ".gate", ".mlatch":
			return nil, fmt.Errorf("blif line %d: %s not supported (combinational subset only)", lineNo, fields[0])
		default:
			if strings.HasPrefix(fields[0], ".") {
				// Ignore unknown dot-directives (e.g. .default_input_arrival).
				continue
			}
			// Cover row.
			if cur == nil {
				return nil, fmt.Errorf("blif line %d: cover row outside .names", lineNo)
			}
			var inBits, outBit string
			if len(cur.Inputs) == 0 {
				if len(fields) != 1 {
					return nil, fmt.Errorf("blif line %d: constant cover must be a single output bit", lineNo)
				}
				inBits, outBit = "", fields[0]
			} else {
				if len(fields) != 2 {
					return nil, fmt.Errorf("blif line %d: cover row needs input plane and output bit", lineNo)
				}
				inBits, outBit = fields[0], fields[1]
			}
			if len(inBits) != len(cur.Inputs) {
				return nil, fmt.Errorf("blif line %d: cover width %d != %d inputs of %q", lineNo, len(inBits), len(cur.Inputs), cur.Name)
			}
			for _, ch := range inBits {
				if ch != '0' && ch != '1' && ch != '-' {
					return nil, fmt.Errorf("blif line %d: bad cover literal %q", lineNo, string(ch))
				}
			}
			if outBit != "0" && outBit != "1" {
				return nil, fmt.Errorf("blif line %d: bad output bit %q", lineNo, outBit)
			}
			if len(cur.Covers) > 0 && cur.Covers[0].Output != outBit[0] {
				return nil, fmt.Errorf("blif line %d: mixed output phases in %q", lineNo, cur.Name)
			}
			cur.Covers = append(cur.Covers, Cover{Inputs: inBits, Output: outBit[0]})
		}
	}
	flush()
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return finish(n)
}

func finish(n *Netlist) (*Netlist, error) {
	if len(n.Inputs) == 0 {
		return nil, fmt.Errorf("blif model %q: no .inputs", n.Model)
	}
	if len(n.Outputs) == 0 {
		return nil, fmt.Errorf("blif model %q: no .outputs", n.Model)
	}
	defined := make(map[string]bool, len(n.Nodes)+len(n.Inputs))
	for _, in := range n.Inputs {
		defined[in] = true
	}
	for i := range n.Nodes {
		if defined[n.Nodes[i].Name] {
			return nil, fmt.Errorf("blif model %q: %q defined twice", n.Model, n.Nodes[i].Name)
		}
		defined[n.Nodes[i].Name] = true
	}
	for i := range n.Nodes {
		for _, in := range n.Nodes[i].Inputs {
			if !defined[in] {
				return nil, fmt.Errorf("blif model %q: node %q reads undefined signal %q", n.Model, n.Nodes[i].Name, in)
			}
		}
	}
	for _, out := range n.Outputs {
		if !defined[out] {
			return nil, fmt.Errorf("blif model %q: output %q undefined", n.Model, out)
		}
	}
	return n, nil
}

// Write emits the netlist in canonical BLIF form.
func Write(w io.Writer, n *Netlist) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, ".model %s\n", n.Model)
	writeSignalList(bw, ".inputs", n.Inputs)
	writeSignalList(bw, ".outputs", n.Outputs)
	for i := range n.Nodes {
		nd := &n.Nodes[i]
		fmt.Fprintf(bw, ".names %s %s\n", strings.Join(nd.Inputs, " "), nd.Name)
		for _, cv := range nd.Covers {
			if len(nd.Inputs) == 0 {
				fmt.Fprintf(bw, "%c\n", cv.Output)
			} else {
				fmt.Fprintf(bw, "%s %c\n", cv.Inputs, cv.Output)
			}
		}
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}

func writeSignalList(w io.Writer, directive string, names []string) {
	const perLine = 10
	for i := 0; i < len(names); i += perLine {
		end := i + perLine
		if end > len(names) {
			end = len(names)
		}
		cont := ""
		if end < len(names) {
			cont = " \\"
		}
		lead := directive
		if i > 0 {
			lead = strings.Repeat(" ", len(directive))
		}
		fmt.Fprintf(w, "%s %s%s\n", lead, strings.Join(names[i:end], " "), cont)
	}
}

// SortedNodeNames returns node names in sorted order (test helper).
func (n *Netlist) SortedNodeNames() []string {
	out := make([]string, len(n.Nodes))
	for i := range n.Nodes {
		out[i] = n.Nodes[i].Name
	}
	sort.Strings(out)
	return out
}
