package blif

import (
	"bytes"
	"testing"

	"repro/internal/circuit"
	"repro/internal/logic"
)

func TestFromCircuitRoundTrip(t *testing.T) {
	c := circuit.New("rt")
	a, _ := c.AddPI("a")
	b, _ := c.AddPI("b")
	d, _ := c.AddPI("d")
	one, _ := c.AddGate("one", logic.Const1)
	zero, _ := c.AddGate("zero", logic.Const0)
	g1, _ := c.AddGate("g1", logic.Nand, a, b, d)
	g2, _ := c.AddGate("g2", logic.Xor, g1, a)
	g3, _ := c.AddGate("g3", logic.Xnor, g2, b)
	g4, _ := c.AddGate("g4", logic.Nor, g3, one)
	g5, _ := c.AddGate("g5", logic.Or, g4, zero, g1)
	inv, _ := c.AddGate("invx", logic.Inv, g5)
	bufg, _ := c.AddGate("bufx", logic.Buf, inv)
	if err := c.AddPO("bufx", bufg); err != nil {
		t.Fatal(err)
	}
	if err := c.AddPO("alias_out", g2); err != nil {
		t.Fatal(err)
	}
	n, err := FromCircuit(c)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, n); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	if len(back.Inputs) != 3 || len(back.Outputs) != 2 {
		t.Fatalf("interface changed: %v %v", back.Inputs, back.Outputs)
	}
	// Semantics: compare cover evaluation against direct circuit
	// simulation on all 8 input patterns.
	for m := 0; m < 8; m++ {
		in := map[string]bool{"a": m&1 == 1, "b": m&2 == 2, "d": m&4 == 4}
		want := evalCircuit(t, c, []bool{in["a"], in["b"], in["d"]})
		got := evalNetlist(back, in)
		for i, po := range []string{"bufx", "alias_out"} {
			if got[po] != want[i] {
				t.Fatalf("pattern %d: PO %s = %v, want %v", m, po, got[po], want[i])
			}
		}
	}
}

// evalCircuit evaluates the circuit directly (no sim import to avoid a
// dependency cycle in tests; three inputs only).
func evalCircuit(t *testing.T, c *circuit.Circuit, in []bool) []bool {
	t.Helper()
	vals := make([]bool, len(c.Nodes))
	for i, pi := range c.PIs {
		vals[pi] = in[i]
	}
	order, err := c.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range order {
		nd := &c.Nodes[id]
		if nd.IsPI {
			continue
		}
		args := make([]bool, len(nd.Fanin))
		for j, f := range nd.Fanin {
			args[j] = vals[f]
		}
		vals[id] = nd.Kind.Eval(args)
	}
	out := make([]bool, len(c.POs))
	for i, po := range c.POs {
		out[i] = vals[po.Driver]
	}
	return out
}

// evalNetlist evaluates a parsed BLIF (single-phase covers).
func evalNetlist(n *Netlist, in map[string]bool) map[string]bool {
	vals := map[string]bool{}
	for k, v := range in {
		vals[k] = v
	}
	remaining := make([]*Node, len(n.Nodes))
	for i := range n.Nodes {
		remaining[i] = &n.Nodes[i]
	}
	for len(remaining) > 0 {
		var deferred []*Node
		for _, nd := range remaining {
			ready := true
			for _, s := range nd.Inputs {
				if _, ok := vals[s]; !ok {
					ready = false
				}
			}
			if !ready {
				deferred = append(deferred, nd)
				continue
			}
			if v, ok := nd.IsConst(); ok {
				vals[nd.Name] = v
				continue
			}
			phase1 := nd.Covers[0].Output == '1'
			hit := false
			for _, cv := range nd.Covers {
				match := true
				for i, ch := range []byte(cv.Inputs) {
					v := vals[nd.Inputs[i]]
					if ch == '1' && !v || ch == '0' && v {
						match = false
						break
					}
				}
				if match {
					hit = true
					break
				}
			}
			vals[nd.Name] = hit == phase1
		}
		if len(deferred) == len(remaining) {
			panic("cyclic netlist")
		}
		remaining = deferred
	}
	out := map[string]bool{}
	for _, o := range n.Outputs {
		out[o] = vals[o]
	}
	return out
}

func TestFromCircuitPOCollision(t *testing.T) {
	c := circuit.New("bad")
	a, _ := c.AddPI("a")
	g1, _ := c.AddGate("g1", logic.Inv, a)
	g2, _ := c.AddGate("g2", logic.Inv, g1)
	if err := c.AddPO("g1", g2); err != nil {
		t.Fatal(err)
	}
	if _, err := FromCircuit(c); err == nil {
		t.Error("PO/node collision accepted")
	}
}
