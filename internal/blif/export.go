package blif

import (
	"fmt"
	"strings"

	"repro/internal/circuit"
	"repro/internal/logic"
)

// FromCircuit converts a mapped gate-level circuit back into a BLIF netlist:
// every gate becomes a single-phase .names cover (AND/NAND/OR/NOR/XOR/XNOR/
// BUF/INV/constants). Primary outputs whose name differs from their driver
// gain a buffer node so the BLIF output names match the circuit's.
func FromCircuit(c *circuit.Circuit) (*Netlist, error) {
	n := &Netlist{Model: c.Name}
	if n.Model == "" {
		n.Model = "top"
	}
	for _, pi := range c.PIs {
		n.Inputs = append(n.Inputs, c.Nodes[pi].Name)
	}
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	for _, id := range order {
		nd := &c.Nodes[id]
		if nd.IsPI {
			continue
		}
		node, err := gateToNames(c, nd)
		if err != nil {
			return nil, err
		}
		n.Nodes = append(n.Nodes, node)
	}
	for _, po := range c.POs {
		drv := c.Nodes[po.Driver].Name
		if po.Name == drv {
			n.Outputs = append(n.Outputs, po.Name)
			continue
		}
		if _, clash := c.Lookup(po.Name); clash {
			return nil, fmt.Errorf("blif: PO %q collides with an unrelated node", po.Name)
		}
		n.Nodes = append(n.Nodes, Node{
			Name:   po.Name,
			Inputs: []string{drv},
			Covers: []Cover{{Inputs: "1", Output: '1'}},
		})
		n.Outputs = append(n.Outputs, po.Name)
	}
	return n, nil
}

func gateToNames(c *circuit.Circuit, nd *circuit.Node) (Node, error) {
	ins := make([]string, len(nd.Fanin))
	for i, f := range nd.Fanin {
		ins[i] = c.Nodes[f].Name
	}
	node := Node{Name: nd.Name, Inputs: ins}
	k := len(ins)
	switch nd.Kind {
	case logic.Const0:
		// No covers: constant 0.
	case logic.Const1:
		node.Covers = []Cover{{Inputs: "", Output: '1'}}
	case logic.Buf:
		node.Covers = []Cover{{Inputs: "1", Output: '1'}}
	case logic.Inv:
		node.Covers = []Cover{{Inputs: "0", Output: '1'}}
	case logic.And:
		node.Covers = []Cover{{Inputs: strings.Repeat("1", k), Output: '1'}}
	case logic.Nand:
		node.Covers = []Cover{{Inputs: strings.Repeat("1", k), Output: '0'}}
	case logic.Or:
		node.Covers = []Cover{{Inputs: strings.Repeat("0", k), Output: '0'}}
	case logic.Nor:
		node.Covers = []Cover{{Inputs: strings.Repeat("0", k), Output: '1'}}
	case logic.Xor, logic.Xnor:
		// Enumerate parity minterms (k is 2 in the default library; the
		// general form is kept for safety and stays single-phase).
		wantOdd := nd.Kind == logic.Xor
		for m := 0; m < 1<<uint(k); m++ {
			ones := 0
			row := make([]byte, k)
			for i := 0; i < k; i++ {
				if m>>uint(i)&1 == 1 {
					row[i] = '1'
					ones++
				} else {
					row[i] = '0'
				}
			}
			if (ones%2 == 1) == wantOdd {
				node.Covers = append(node.Covers, Cover{Inputs: string(row), Output: '1'})
			}
		}
	default:
		return Node{}, fmt.Errorf("blif: cannot export gate %q of kind %v", nd.Name, nd.Kind)
	}
	return node, nil
}
