// Package cec implements combinational equivalence checking: it encodes two
// circuits over the same primary-input/primary-output interface into CNF via
// Tseitin transformation, builds a miter (XOR of each output pair, ORed and
// asserted), and decides equivalence with the CDCL solver in internal/sat.
// A bit-parallel random-simulation pre-pass catches inequivalent pairs
// cheaply before SAT runs.
//
// This is the proof engine behind the paper's Requirement 1 ("correct
// functionality"): every fingerprinted copy is checked equivalent to the
// original design.
package cec

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/aig"
	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/sat"
	"repro/internal/sim"
)

// ErrBudgetExhausted is wrapped by Check/Session.Verify errors when the SAT
// search ran out of its MaxConflicts budget (or a sat.budget fault fired)
// before reaching a verdict. Callers distinguish it from structural errors
// with errors.Is: a budget exhaustion is retryable — with a larger budget,
// or by degrading to a simulation spot-check, as the daemon's verification
// circuit breaker does.
var ErrBudgetExhausted = errors.New("cec: SAT conflict budget exhausted")

// Options tunes the checker.
type Options struct {
	// SimWords is the number of 64-pattern random-simulation words used as
	// a refutation pre-pass (0 disables the pre-pass).
	SimWords int
	// Seed drives the random pre-pass.
	Seed int64
	// MaxConflicts bounds the SAT search; ≤0 means unlimited.
	MaxConflicts int64
}

// DefaultOptions: 16 words (1024 patterns) of simulation, unlimited SAT.
func DefaultOptions() Options { return Options{SimWords: 16, Seed: 1} }

// Verdict reports the outcome of an equivalence check.
type Verdict struct {
	Equivalent bool
	// Proved is true when the verdict is backed by a SAT proof or a SAT
	// counterexample, false when only simulation evidence exists (cannot
	// happen with the default flow, which always finishes with SAT).
	Proved bool
	// Counterexample, when not nil, assigns each PI (in PI order) a value
	// demonstrating inequivalence.
	Counterexample []bool
	// PO is the name of a differing output for the counterexample.
	PO string
	// Conflicts is the SAT effort this check consumed (0 when simulation or
	// structural collapse settled it without a SAT call). It is populated on
	// budget-exhaustion errors too, so budgeted callers — the red-team
	// attacker charging strip-proofs against a total conflict budget — can
	// account for work that reached no verdict.
	Conflicts int64
}

// tseitin encodes circuit c into solver s, mapping every node to a solver
// variable. piVars supplies pre-allocated variables for the PIs (shared
// between the two sides of a miter); it is keyed by PI name.
func tseitin(s *sat.Solver, c *circuit.Circuit, piVars map[string]int) ([]int, error) {
	nodeVar := make([]int, len(c.Nodes))
	order, err := c.TopoOrder()
	if err != nil {
		return nil, err
	}
	for _, id := range order {
		nd := &c.Nodes[id]
		if nd.IsPI {
			v, ok := piVars[nd.Name]
			if !ok {
				return nil, fmt.Errorf("cec: no shared variable for PI %q", nd.Name)
			}
			nodeVar[id] = v
			continue
		}
		out := s.NewVar()
		nodeVar[id] = out
		in := make([]int, len(nd.Fanin))
		for i, f := range nd.Fanin {
			in[i] = nodeVar[f]
		}
		if err := encodeGate(s, nd.Kind, out, in); err != nil {
			return nil, fmt.Errorf("cec: node %q: %w", nd.Name, err)
		}
	}
	return nodeVar, nil
}

// Encode Tseitin-encodes circuit c into solver s over the shared primary
// input variables piVars (keyed by PI name; every PI of c must be present)
// and returns one literal per primary output, in PO order. It is the
// building block for custom miters beyond plain equivalence — the red-team
// DIP attack encodes one keyed circuit twice over shared inputs and joins
// the copies with a key-inequality clause (internal/redteam). Check and
// Session remain the one-stop equivalence checkers.
func Encode(s *sat.Solver, c *circuit.Circuit, piVars map[string]int) ([]int, error) {
	nodeVar, err := tseitin(s, c, piVars)
	if err != nil {
		return nil, err
	}
	pos := make([]int, len(c.POs))
	for i := range c.POs {
		pos[i] = nodeVar[c.POs[i].Driver]
	}
	return pos, nil
}

// encodeGate adds the Tseitin clauses for out = kind(in...).
func encodeGate(s *sat.Solver, kind logic.Kind, out int, in []int) error {
	switch kind {
	case logic.Const0:
		return s.AddClause(-out)
	case logic.Const1:
		return s.AddClause(out)
	case logic.Buf:
		if err := s.AddClause(-in[0], out); err != nil {
			return err
		}
		return s.AddClause(in[0], -out)
	case logic.Inv:
		if err := s.AddClause(in[0], out); err != nil {
			return err
		}
		return s.AddClause(-in[0], -out)
	case logic.And, logic.Nand:
		y := out
		if kind == logic.Nand {
			// Encode an AND into a fresh variable, then out = ¬y.
			y = s.NewVar()
			if err := s.AddClause(y, out); err != nil {
				return err
			}
			if err := s.AddClause(-y, -out); err != nil {
				return err
			}
		}
		// y → each input; all inputs → y.
		long := make([]int, 0, len(in)+1)
		for _, x := range in {
			if err := s.AddClause(-y, x); err != nil {
				return err
			}
			long = append(long, -x)
		}
		long = append(long, y)
		return s.AddClause(long...)
	case logic.Or, logic.Nor:
		y := out
		if kind == logic.Nor {
			y = s.NewVar()
			if err := s.AddClause(y, out); err != nil {
				return err
			}
			if err := s.AddClause(-y, -out); err != nil {
				return err
			}
		}
		long := make([]int, 0, len(in)+1)
		for _, x := range in {
			if err := s.AddClause(y, -x); err != nil {
				return err
			}
			long = append(long, x)
		}
		long = append(long, -y)
		return s.AddClause(long...)
	case logic.Xor, logic.Xnor:
		// Chain binary XORs: t1 = in0 ⊕ in1, t2 = t1 ⊕ in2, ...
		acc := in[0]
		for i := 1; i < len(in); i++ {
			var t int
			last := i == len(in)-1
			if last && kind == logic.Xor {
				t = out
			} else {
				t = s.NewVar()
			}
			if err := encodeXor2(s, t, acc, in[i]); err != nil {
				return err
			}
			acc = t
		}
		if kind == logic.Xnor {
			// out = ¬acc.
			if err := s.AddClause(acc, out); err != nil {
				return err
			}
			return s.AddClause(-acc, -out)
		}
		if len(in) == 1 {
			// Degenerate single-input XOR: out = in0 (cannot occur for
			// validated circuits; kept for safety).
			if err := s.AddClause(-in[0], out); err != nil {
				return err
			}
			return s.AddClause(in[0], -out)
		}
		return nil
	}
	return fmt.Errorf("unsupported kind %v", kind)
}

// encodeXor2 encodes t = a ⊕ b.
func encodeXor2(s *sat.Solver, t, a, b int) error {
	for _, cl := range [][]int{
		{-t, a, b},
		{-t, -a, -b},
		{t, -a, b},
		{t, a, -b},
	} {
		if err := s.AddClause(cl...); err != nil {
			return err
		}
	}
	return nil
}

// interfaceCheck verifies the two circuits share PI/PO name sequences.
func interfaceCheck(a, b *circuit.Circuit) error {
	if len(a.PIs) != len(b.PIs) || len(a.POs) != len(b.POs) {
		return fmt.Errorf("cec: interface shape differs (%d/%d PIs, %d/%d POs)",
			len(a.PIs), len(b.PIs), len(a.POs), len(b.POs))
	}
	for i := range a.PIs {
		if a.Nodes[a.PIs[i]].Name != b.Nodes[b.PIs[i]].Name {
			return fmt.Errorf("cec: PI %d named %q vs %q", i, a.Nodes[a.PIs[i]].Name, b.Nodes[b.PIs[i]].Name)
		}
	}
	for i := range a.POs {
		if a.POs[i].Name != b.POs[i].Name {
			return fmt.Errorf("cec: PO %d named %q vs %q", i, a.POs[i].Name, b.POs[i].Name)
		}
	}
	return nil
}

// Check decides whether circuits a and b (same PI/PO interface) compute the
// same function on every output.
func Check(a, b *circuit.Circuit, opts Options) (Verdict, error) {
	return CheckCtx(context.Background(), a, b, opts)
}

// CheckCtx is Check with cooperative cancellation: when ctx is done the SAT
// search stops at its next poll and the context error is returned.
func CheckCtx(ctx context.Context, a, b *circuit.Circuit, opts Options) (Verdict, error) {
	mOneShotChecks.Inc()
	sp := obs.Start("cec.check")
	defer sp.End()
	if err := interfaceCheck(a, b); err != nil {
		return Verdict{}, err
	}
	// Simulation pre-pass: a mismatch is a proved counterexample.
	if opts.SimWords > 0 {
		vec := sim.Random(len(a.PIs), opts.SimWords, opts.Seed)
		mm, err := sim.Compare(a, b, vec)
		if err != nil {
			return Verdict{}, err
		}
		if mm != nil {
			w, lane := mm.Pattern/64, uint(mm.Pattern%64)
			cex := make([]bool, len(a.PIs))
			for i := range cex {
				cex[i] = vec.Words[i][w]>>lane&1 == 1
			}
			return Verdict{Equivalent: false, Proved: true, Counterexample: cex, PO: mm.PO}, nil
		}
	}

	// Shared-AIG miter: strash both circuits into one AIG over name-shared
	// primary inputs, so any cone the two sides compute identically — up to
	// complement — collapses onto one node before CNF exists. Outputs whose
	// edges coincide are proved equal by construction and never encoded; a
	// fully-collapsing miter (e.g. a resynthesis round trip) is discharged
	// with no SAT call at all. Gate-level Tseitin remains as the fallback
	// for circuits the AIG cannot express.
	g := aig.New("miter")
	piRef := make(map[string]aig.Ref, len(a.PIs))
	ra, errA := aig.FoldInto(g, a, piRef)
	rb, errB := aig.FoldInto(g, b, piRef)
	if errA != nil || errB != nil {
		return checkTseitin(ctx, a, b, opts)
	}

	s := sat.New()
	s.MaxConflicts = opts.MaxConflicts
	lits, err := encodeAIG(s, g)
	if err != nil {
		return Verdict{}, err
	}
	// Miter: or over outputs of (outA ⊕ outB) must be satisfiable for
	// inequivalence.
	diff := make([]int, 0, len(a.POs))
	for i := range a.POs {
		la := lits.lit(ra[a.POs[i].Driver])
		lb := lits.lit(rb[b.POs[i].Driver])
		if la == lb {
			continue // same AIG edge: equal by construction
		}
		x := s.NewVar()
		if err := encodeXor2(s, x, la, lb); err != nil {
			return Verdict{}, err
		}
		diff = append(diff, x)
	}
	if len(diff) == 0 {
		return Verdict{Equivalent: true, Proved: true}, nil
	}
	if err := s.AddClause(diff...); err != nil {
		return Verdict{}, err
	}
	st, err := s.SolveCtx(ctx)
	if err != nil {
		return Verdict{Conflicts: s.Conflicts()}, err
	}
	switch st {
	case sat.Unsat:
		return Verdict{Equivalent: true, Proved: true, Conflicts: s.Conflicts()}, nil
	case sat.Sat:
		cex := make([]bool, len(a.PIs))
		for i, pi := range a.PIs {
			cex[i] = s.Value(lits.lit(piRef[a.Nodes[pi].Name]))
		}
		po := findDifferingPO(a, b, cex)
		return Verdict{Equivalent: false, Proved: true, Counterexample: cex, PO: po, Conflicts: s.Conflicts()}, nil
	default:
		return Verdict{Conflicts: s.Conflicts()}, fmt.Errorf("%w (%d conflicts)", ErrBudgetExhausted, opts.MaxConflicts)
	}
}

// aigLits maps AIG nodes to solver variables; lit resolves an edge to a
// signed literal.
type aigLits struct{ vars []int }

func (l aigLits) lit(r aig.Ref) int {
	v := l.vars[r.Node()]
	if r.Compl() {
		return -v
	}
	return v
}

// encodeAIG lowers an AIG into CNF: one variable per node, the constant node
// asserted true, and three clauses per AND (v ↔ l0 ∧ l1). Primary inputs get
// free variables.
func encodeAIG(s *sat.Solver, g *aig.AIG) (aigLits, error) {
	p := g.Pack()
	lits := aigLits{vars: make([]int, p.NumNodes())}
	for i := range lits.vars {
		lits.vars[i] = s.NewVar()
	}
	if err := s.AddClause(lits.vars[0]); err != nil {
		return aigLits{}, err
	}
	for i := 0; i < p.NumAnds(); i++ {
		n, f0, f1 := p.And(i)
		v, l0, l1 := lits.vars[n], lits.lit(f0), lits.lit(f1)
		if err := s.AddClause(-v, l0); err != nil {
			return aigLits{}, err
		}
		if err := s.AddClause(-v, l1); err != nil {
			return aigLits{}, err
		}
		if err := s.AddClause(v, -l0, -l1); err != nil {
			return aigLits{}, err
		}
	}
	return lits, nil
}

// checkTseitin is the gate-level SAT phase of CheckCtx, used when a miter
// side cannot be decomposed into an AIG. The simulation pre-pass has already
// run.
func checkTseitin(ctx context.Context, a, b *circuit.Circuit, opts Options) (Verdict, error) {
	s := sat.New()
	s.MaxConflicts = opts.MaxConflicts
	piVars := make(map[string]int, len(a.PIs))
	for _, pi := range a.PIs {
		piVars[a.Nodes[pi].Name] = s.NewVar()
	}
	va, err := tseitin(s, a, piVars)
	if err != nil {
		return Verdict{}, err
	}
	vb, err := tseitin(s, b, piVars)
	if err != nil {
		return Verdict{}, err
	}
	diff := make([]int, 0, len(a.POs))
	for i := range a.POs {
		x := s.NewVar()
		if err := encodeXor2(s, x, va[a.POs[i].Driver], vb[b.POs[i].Driver]); err != nil {
			return Verdict{}, err
		}
		diff = append(diff, x)
	}
	if err := s.AddClause(diff...); err != nil {
		return Verdict{}, err
	}
	st, err := s.SolveCtx(ctx)
	if err != nil {
		return Verdict{Conflicts: s.Conflicts()}, err
	}
	switch st {
	case sat.Unsat:
		return Verdict{Equivalent: true, Proved: true, Conflicts: s.Conflicts()}, nil
	case sat.Sat:
		cex := make([]bool, len(a.PIs))
		for i, pi := range a.PIs {
			cex[i] = s.Value(piVars[a.Nodes[pi].Name])
		}
		po := findDifferingPO(a, b, cex)
		return Verdict{Equivalent: false, Proved: true, Counterexample: cex, PO: po, Conflicts: s.Conflicts()}, nil
	default:
		return Verdict{Conflicts: s.Conflicts()}, fmt.Errorf("%w (%d conflicts)", ErrBudgetExhausted, opts.MaxConflicts)
	}
}

// findDifferingPO replays a counterexample to name a differing output. The
// replay runs a single-word pass of the packed AIG kernel (aig.View.EvalPOs)
// instead of building a throwaway gate-level simulation engine per side; the
// scalar evaluator remains as the fallback for non-decomposable circuits.
func findDifferingPO(a, b *circuit.Circuit, cex []bool) string {
	var oa, ob []bool
	va, errA := aig.ViewFor(a)
	vb, errB := aig.ViewFor(b)
	if errA == nil && errB == nil {
		oa = va.EvalPOs(cex, nil)
		ob = vb.EvalPOs(cex, nil)
	} else {
		var err error
		if oa, err = sim.EvalOne(a, cex); err != nil {
			return ""
		}
		if ob, err = sim.EvalOne(b, cex); err != nil {
			return ""
		}
	}
	for i := range oa {
		if oa[i] != ob[i] {
			return a.POs[i].Name
		}
	}
	return ""
}

// MustEquivalent is a test/assertion helper: it returns nil when a ≡ b and a
// descriptive error (including a counterexample) otherwise.
func MustEquivalent(a, b *circuit.Circuit) error {
	v, err := Check(a, b, DefaultOptions())
	if err != nil {
		return err
	}
	if !v.Equivalent {
		return fmt.Errorf("cec: %s and %s differ on PO %q for input %v", a.Name, b.Name, v.PO, v.Counterexample)
	}
	return nil
}
