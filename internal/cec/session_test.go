package cec

import (
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/sim"
)

// materialize builds the concrete instance circuit that a (slots, choice)
// pair describes, the way core's embedding does: negative literals become
// helper inverters, same-kind mods append fanins, kind-changing mods go
// through ConvertGate.
func materialize(t *testing.T, master *circuit.Circuit, slots []Slot, choice []int) *circuit.Circuit {
	t.Helper()
	inst := master.Clone()
	for i, v := range choice {
		if v < 0 {
			continue
		}
		m := slots[i].Options[v]
		g := slots[i].Gate
		pins := make([]circuit.NodeID, 0, len(m.Lits))
		for _, l := range m.Lits {
			src := l.Node
			if l.Neg {
				id, err := inst.AddGate(inst.FreshName("inv"), logic.Inv, l.Node)
				if err != nil {
					t.Fatal(err)
				}
				src = id
			}
			pins = append(pins, src)
		}
		if m.Kind == inst.Nodes[g].Kind {
			for _, p := range pins {
				if err := inst.AddFanin(g, p); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			if len(pins) != 1 {
				t.Fatalf("kind-changing mod with %d pins", len(pins))
			}
			if err := inst.ConvertGate(g, m.Kind, pins[0]); err != nil {
				t.Fatal(err)
			}
		}
	}
	return inst
}

// sessionFixture is fig1 with its canonical paper modification: X = AND(A,B)
// is the target, Y = OR(C,D) the trigger with controlling value 1 (the cone
// is masked when Y = 1), so appending literal Y to X is function-preserving.
// A second, deliberately broken option appends ¬Y instead.
func sessionFixture(t *testing.T) (*circuit.Circuit, []Slot) {
	t.Helper()
	c := fig1(t)
	x := c.MustLookup("X")
	y := c.MustLookup("Y")
	slots := []Slot{{
		Gate: x,
		Options: []Mod{
			{Kind: logic.And, Lits: []Lit{{Node: y}}},            // sound
			{Kind: logic.And, Lits: []Lit{{Node: y, Neg: true}}}, // broken
		},
	}}
	return c, slots
}

func TestSessionMatchesCheckOnFixture(t *testing.T) {
	c, slots := sessionFixture(t)
	sess, err := NewSession(c, slots, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, choice := range [][]int{{-1}, {0}, {1}} {
		got, err := sess.Verify(choice)
		if err != nil {
			t.Fatalf("choice %v: %v", choice, err)
		}
		inst := materialize(t, c, slots, choice)
		want, err := Check(c, inst, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if got.Equivalent != want.Equivalent || got.Proved != want.Proved {
			t.Errorf("choice %v: session (%v,%v) vs check (%v,%v)",
				choice, got.Equivalent, got.Proved, want.Equivalent, want.Proved)
		}
		if !got.Equivalent {
			// Counterexample round trip: replay on both circuits; the named
			// PO must differ.
			assertCexDiffers(t, c, inst, got)
		}
	}
}

// assertCexDiffers replays a counterexample on master and instance and
// fails unless some PO (including the named one, when set) differs.
func assertCexDiffers(t *testing.T, master, inst *circuit.Circuit, v Verdict) {
	t.Helper()
	if v.Counterexample == nil {
		t.Fatal("inequivalent verdict without counterexample")
	}
	om, err := sim.EvalOne(master, v.Counterexample)
	if err != nil {
		t.Fatal(err)
	}
	oi, err := sim.EvalOne(inst, v.Counterexample)
	if err != nil {
		t.Fatal(err)
	}
	differs := false
	for i := range om {
		if om[i] != oi[i] {
			differs = true
			if v.PO == master.POs[i].Name {
				return
			}
		}
	}
	if !differs {
		t.Errorf("counterexample %v does not distinguish the circuits", v.Counterexample)
	} else if v.PO != "" {
		t.Errorf("counterexample differs but not on claimed PO %q", v.PO)
	}
}

func TestSessionStaleAfterMutation(t *testing.T) {
	c, slots := sessionFixture(t)
	sess, err := NewSession(c, slots, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Verify([]int{0}); err != nil {
		t.Fatal(err)
	}
	if err := c.SetKind(c.MustLookup("F"), logic.Or); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Verify([]int{0}); err == nil {
		t.Fatal("Verify on a stale session must fail")
	}
}

func TestSessionRejectsUnionCycle(t *testing.T) {
	// A literal drawn from the slot gate's own fanout cone makes the
	// instrumented instance cyclic: X feeds F, and the mod wants F as an
	// extra literal on X.
	c := fig1(t)
	x := c.MustLookup("X")
	f := c.MustLookup("F")
	slots := []Slot{{Gate: x, Options: []Mod{{Kind: logic.And, Lits: []Lit{{Node: f}}}}}}
	if _, err := NewSession(c, slots, DefaultOptions()); err == nil {
		t.Fatal("expected union-cycle error")
	}
}

func TestSessionCascadedSlots(t *testing.T) {
	// Two slots where the second slot's literal lies in the fanout of the
	// first slot's gate: the literal must be read from the *instance*
	// netlist, which the union topological order guarantees.
	c := circuit.New("cascade")
	a, _ := c.AddPI("A")
	b, _ := c.AddPI("B")
	d, _ := c.AddPI("C")
	e, _ := c.AddPI("D")
	x, _ := c.AddGate("X", logic.And, a, b) // slot 0 gate
	y, _ := c.AddGate("Y", logic.Or, d, e)  // trigger for X
	f, _ := c.AddGate("F", logic.And, x, y) // in TFO(X)
	g, _ := c.AddGate("G", logic.Or, d, e)  // slot 1 gate
	h, _ := c.AddGate("H", logic.And, g, y) // output cone
	z, _ := c.AddGate("Z", logic.Or, h, f)  // keeps F observable
	if err := c.AddPO("Z", z); err != nil {
		t.Fatal(err)
	}
	slots := []Slot{
		{Gate: x, Options: []Mod{{Kind: logic.And, Lits: []Lit{{Node: y}}}}},
		// Slot 1 appends literal F — F is in the fanout of slot 0's gate.
		// OR identity is 0, so a sound literal must be 0 whenever the cone
		// is observable; we do not claim soundness here, only that the
		// session verdict matches the one-shot check on the same instance.
		{Gate: g, Options: []Mod{{Kind: logic.Or, Lits: []Lit{{Node: f}}}, {Kind: logic.Or, Lits: []Lit{{Node: f, Neg: true}}}}},
	}
	sess, err := NewSession(c, slots, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, choice := range [][]int{{-1, -1}, {0, -1}, {-1, 0}, {0, 0}, {0, 1}, {-1, 1}} {
		got, err := sess.Verify(choice)
		if err != nil {
			t.Fatalf("choice %v: %v", choice, err)
		}
		inst := materialize(t, c, slots, choice)
		want, err := Check(c, inst, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if got.Equivalent != want.Equivalent {
			t.Errorf("choice %v: session says %v, check says %v", choice, got.Equivalent, want.Equivalent)
		}
		if !got.Equivalent {
			assertCexDiffers(t, c, inst, got)
		}
	}
}

// TestSessionRandomProperty cross-checks session verdicts against one-shot
// Check on random circuits with random (often function-changing) slots.
func TestSessionRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	trials := 30
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		master := randomCircuit(rng, "m", 6, 20+rng.Intn(20))
		slots := randomSlots(rng, master)
		sess, err := NewSession(master, slots, DefaultOptions())
		if err != nil {
			// Union cycles are a legitimate rejection; skip the trial.
			continue
		}
		for k := 0; k < 8; k++ {
			choice := make([]int, len(slots))
			for i := range choice {
				choice[i] = rng.Intn(len(slots[i].Options)+1) - 1
			}
			got, err := sess.Verify(choice)
			if err != nil {
				t.Fatalf("trial %d choice %v: %v", trial, choice, err)
			}
			inst := materialize(t, master, slots, choice)
			want, err := Check(master, inst, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			if got.Equivalent != want.Equivalent {
				t.Fatalf("trial %d choice %v: session says %v, check says %v",
					trial, choice, got.Equivalent, want.Equivalent)
			}
			if !got.Equivalent {
				assertCexDiffers(t, master, inst, got)
			}
		}
	}
}

// randomSlots picks up to three random non-PI gates and gives each 1-3
// random literal-append or convert mods; most change the function, some
// (appending an identity-forcing literal) may not.
func randomSlots(rng *rand.Rand, c *circuit.Circuit) []Slot {
	var gates []circuit.NodeID
	for i := range c.Nodes {
		nd := &c.Nodes[i]
		if nd.IsPI {
			continue
		}
		switch nd.Kind {
		case logic.And, logic.Or, logic.Nand, logic.Nor, logic.Inv, logic.Buf:
			gates = append(gates, circuit.NodeID(i))
		}
	}
	rng.Shuffle(len(gates), func(i, j int) { gates[i], gates[j] = gates[j], gates[i] })
	nSlots := 1 + rng.Intn(3)
	if nSlots > len(gates) {
		nSlots = len(gates)
	}
	slots := make([]Slot, 0, nSlots)
	for _, g := range gates[:nSlots] {
		kind := c.Nodes[g].Kind
		nOpts := 1 + rng.Intn(3)
		opts := make([]Mod, 0, nOpts)
		for v := 0; v < nOpts; v++ {
			lit := Lit{Node: circuit.NodeID(rng.Intn(len(c.Nodes))), Neg: rng.Intn(2) == 1}
			if lit.Node == g {
				lit.Node = c.PIs[rng.Intn(len(c.PIs))]
			}
			// A positive literal repeating an existing pin cannot be
			// materialized (AddFanin rejects duplicates); a fresh helper
			// inverter never collides.
			for _, f := range c.Nodes[g].Fanin {
				if f == lit.Node {
					lit.Neg = true
					break
				}
			}
			switch kind {
			case logic.Inv:
				nk := logic.Nand
				if rng.Intn(2) == 1 {
					nk = logic.Nor
				}
				opts = append(opts, Mod{Kind: nk, Lits: []Lit{lit}})
			case logic.Buf:
				nk := logic.And
				if rng.Intn(2) == 1 {
					nk = logic.Or
				}
				opts = append(opts, Mod{Kind: nk, Lits: []Lit{lit}})
			default:
				opts = append(opts, Mod{Kind: kind, Lits: []Lit{lit}})
			}
		}
		slots = append(slots, Slot{Gate: g, Options: opts})
	}
	return slots
}

func TestSessionStatsAndSweeping(t *testing.T) {
	// A circuit with duplicated structure: sweeping or hashing should
	// collapse the redundant half.
	c := circuit.New("dup")
	a, _ := c.AddPI("A")
	b, _ := c.AddPI("B")
	x1, _ := c.AddGate("X1", logic.And, a, b)
	x2, _ := c.AddGate("X2", logic.And, a, b) // structural duplicate of X1
	n1, _ := c.AddGate("N1", logic.Nand, a, b)
	o1, _ := c.AddGate("O1", logic.Or, x1, n1)
	o2, _ := c.AddGate("O2", logic.Or, x2, n1)
	if err := c.AddPO("O1", o1); err != nil {
		t.Fatal(err)
	}
	if err := c.AddPO("O2", o2); err != nil {
		t.Fatal(err)
	}
	slots := []Slot{{Gate: o1, Options: []Mod{{Kind: logic.Or, Lits: []Lit{{Node: a}}}}}}
	sess, err := NewSession(c, slots, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	st := sess.Stats()
	if st.Hashed == 0 {
		t.Error("structural hashing found no duplicates in a duplicated circuit")
	}
	// X2 duplicates X1 and N1 = NAND(A,B) is the complement of X1 = AND(A,B):
	// both strash onto X1's AIG node, so the fraig pre-pass aliases them with
	// no SAT at all — sweeping never even sees them.
	if st.Fraiged < 2 {
		t.Errorf("Fraiged = %d, want ≥2 (duplicate + antivalent pair)", st.Fraiged)
	}
	if st.SweepSolves != 0 {
		t.Errorf("SweepSolves = %d: fraiging should have pre-empted sweeping here", st.SweepSolves)
	}
	if _, err := sess.Verify([]int{0}); err != nil {
		t.Fatal(err)
	}
	if got := sess.Stats().Verifies; got != 1 {
		t.Errorf("Verifies = %d, want 1", got)
	}
}
