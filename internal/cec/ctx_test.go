package cec

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/fault"
)

// armFaults enables a fault plan for one test; plans are process-global so
// these tests must not run in parallel.
func armFaults(t *testing.T, spec string) {
	t.Helper()
	p, err := fault.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	fault.Enable(p)
	t.Cleanup(fault.Disable)
}

// TestSessionVerifyCtxDeadline: with every SAT context poll stalled by an
// injected sat.slow delay, a short deadline interrupts VerifyCtx mid-search
// promptly, and the session remains usable afterwards.
func TestSessionVerifyCtxDeadline(t *testing.T) {
	c, slots := sessionFixture(t)
	sess, err := NewSession(c, slots, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Stall each periodic poll so even this tiny miter overruns a 5ms
	// deadline, but polls still happen (the loop stays cancellable). The
	// poll runs every ctxCheckInterval iterations, so the very first one
	// pushes past the deadline.
	armFaults(t, "sat.slow:delay=20ms")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err = sess.VerifyCtx(ctx, []int{0})
	elapsed := time.Since(t0)
	if err == nil {
		// Tiny fixtures can finish inside the first 128 iterations before
		// any poll happens — that is a legitimate completion, not a bug —
		// but with a 20ms stall on a 5ms deadline the solve should lose the
		// race. Treat success as unexpected so regressions surface.
		t.Fatalf("VerifyCtx finished despite stalled polls (elapsed %v)", elapsed)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("VerifyCtx error = %v, want deadline exceeded", err)
	}
	if elapsed > 150*time.Millisecond {
		t.Fatalf("VerifyCtx returned after %v, want prompt cancellation", elapsed)
	}

	// Session is reusable: disarm the stall and verify both options fully.
	fault.Disable()
	v, err := sess.Verify([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equivalent {
		t.Fatal("sound option not equivalent after cancelled verify")
	}
	v, err = sess.Verify([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if v.Equivalent {
		t.Fatal("broken option reported equivalent after cancelled verify")
	}
}

// TestSessionBudgetExhaustedSentinel: the sat.budget injection point (and
// therefore any real MaxConflicts exhaustion) surfaces as an error wrapping
// ErrBudgetExhausted, which the daemon keys its degraded fallback on.
func TestSessionBudgetExhaustedSentinel(t *testing.T) {
	c, slots := sessionFixture(t)
	sess, err := NewSession(c, slots, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	armFaults(t, "sat.budget:every=1")
	_, err = sess.Verify([]int{0})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("Verify under injected budget = %v, want ErrBudgetExhausted", err)
	}
	// Recovery after the faults stop.
	fault.Disable()
	v, err := sess.Verify([]int{0})
	if err != nil || !v.Equivalent {
		t.Fatalf("Verify after faults = (%+v, %v), want equivalent", v, err)
	}
}

// TestCheckCtxCancelled: the one-shot path refuses a dead context.
func TestCheckCtxCancelled(t *testing.T) {
	c, slots := sessionFixture(t)
	inst := materialize(t, c, slots, []int{0})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CheckCtx(ctx, c, inst, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("CheckCtx = %v, want context.Canceled", err)
	}
	// Same circuits check fine with a live context.
	v, err := CheckCtx(context.Background(), c, inst, Options{})
	if err != nil || !v.Equivalent {
		t.Fatalf("CheckCtx = (%+v, %v), want equivalent", v, err)
	}
}

// TestCheckBudgetSentinel: a real (non-injected) MaxConflicts exhaustion on
// the one-shot path also wraps ErrBudgetExhausted.
func TestCheckBudgetSentinel(t *testing.T) {
	c, slots := sessionFixture(t)
	// Inequivalent pair with the sim pre-pass disabled forces SAT work; a
	// 1-conflict budget cannot finish... unless the first decision already
	// satisfies the miter, so instead use an injected budget for determinism
	// on this tiny fixture.
	inst := materialize(t, c, slots, []int{1})
	armFaults(t, "sat.budget:every=1")
	_, err := Check(c, inst, Options{})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("Check under budget = %v, want ErrBudgetExhausted", err)
	}
}
