package cec

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"repro/internal/aig"
	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/sat"
	"repro/internal/sim"
)

// Observability counters (internal/obs), aggregated across every session
// and one-shot check in the process. Miter size before fraiging and SAT
// sweeping is miter_vars + nodes_fraiged + nodes_merged (each merge avoided
// one variable); after them it is miter_vars.
var (
	mSessions         = obs.NewCounter("cec", "sessions_built")
	mMiterVars        = obs.NewCounter("cec", "miter_vars")
	mMiterClauses     = obs.NewCounter("cec", "miter_clauses")
	mNodesHashed      = obs.NewCounter("cec", "nodes_hashed")
	mNodesFraiged     = obs.NewCounter("cec", "nodes_fraiged")
	mNodesMerged      = obs.NewCounter("cec", "nodes_merged")
	mSweepSolves      = obs.NewCounter("cec", "sweep_solves")
	mVerifies         = obs.NewCounter("cec", "session_verifies")
	mUniversalSolves  = obs.NewCounter("cec", "universal_solves")
	mAssumptionSolves = obs.NewCounter("cec", "assumption_solves")
	mConesClosed      = obs.NewCounter("cec", "cones_closed")
	mOneShotChecks    = obs.NewCounter("cec", "oneshot_checks")
)

// This file implements the incremental verification engine: instead of
// re-encoding a fresh miter for every fingerprint copy, a Session encodes
// the master circuit once against a fully-instrumented instance in which
// every candidate modification is present but gated by a fresh activation
// literal. Verifying one copy then costs a single Solve(assumptions...)
// call that pins each activation literal, and conflict clauses learned
// while verifying one copy remain valid for (and speed up) all later
// copies, because clauses learned under assumptions are implied by the
// formula alone.

// Lit is a signed reference to a master-circuit node: the modification
// literal is the node's value, or its complement when Neg is set.
type Lit struct {
	Node circuit.NodeID
	Neg  bool
}

// Mod describes one candidate modification of a slot's gate: the gate's
// function becomes Kind(original fanins..., Lits...). This matches both the
// catalogue's append-literal form (Kind == original kind) and the
// convert-single form (INV→NAND/NOR, BUF→AND/OR).
type Mod struct {
	Kind logic.Kind
	Lits []Lit
}

// Slot is one independently-selectable fingerprint position: a target gate
// plus its candidate modifications. A choice of -1 leaves the gate in its
// original form.
type Slot struct {
	Gate    circuit.NodeID
	Options []Mod
}

// SessionStats reports the size and work of a session.
type SessionStats struct {
	Vars        int // solver variables allocated
	Clauses     int // problem clauses added
	Hashed      int // nodes deduplicated by structural hashing
	Fraiged     int // nodes aliased to AIG-identical earlier encodings (no SAT)
	Merged      int // nodes merged by simulation-guided SAT sweeping
	SweepSolves int // bounded equivalence queries attempted by sweeping
	Verifies    int // Verify calls served
	ClosedPOs   int // miter outputs proved unreachable under all activations

	// UniversalSolves and AssumptionSolves split the Verify-phase SAT
	// calls: one-time all-activations-free cone closings vs. per-choice
	// assumption solves over the POs that stayed open.
	UniversalSolves  int
	AssumptionSolves int
	// BuildDecisions/BuildPropagations/BuildConflicts freeze the SAT work
	// spent constructing the miter (dominated by SAT sweeping); Decisions/
	// Propagations/Conflicts count the verify phase alone — the solver's
	// counters are reset (sat.Solver.ResetStats) when construction ends,
	// so reused-solver stats no longer conflate the two phases.
	BuildDecisions, BuildPropagations, BuildConflicts int64
	Decisions, Propagations, Conflicts                int64
}

// Session is a persistent miter between a master circuit and its
// fully-instrumented fingerprint instance. Build it once per analysis with
// NewSession, then call Verify for each copy.
//
// Contract:
//   - The session snapshots the master's Version at build time; Verify
//     returns an error once the master has been mutated, after which the
//     session must be rebuilt. The slot set is likewise fixed at build.
//   - Verify is safe for concurrent use (an internal mutex serializes
//     solver access) and is deterministic: the same choice on the same
//     session yields the same verdict, and equivalent-copy verdicts are
//     identical to the one-shot Check path.
//   - Counterexamples refer to master PI order, exactly as in Check.
type Session struct {
	mu      sync.Mutex
	master  *circuit.Circuit
	version uint64
	slots   []Slot
	opts    Options

	s       *sat.Solver
	piVars  []int   // PI variable per master PI index
	act     [][]int // activation variable per slot, per option
	diffPO  []int   // per PO: XOR-difference variable, 0 when unaffected
	trivial bool    // no slot reaches any PO: always equivalent

	// Retained build products for cone-local universal closing: the union
	// topological order, the affected-region mask, and the slot index per
	// slot gate.
	order    []circuit.NodeID
	affected []bool
	slotOf   map[circuit.NodeID]int

	// SAT work done by cone-local closing solvers, folded into the
	// verify-phase totals by Stats (the shared solver's counters cannot see
	// the throwaway per-cone solvers).
	coneDec, coneProp, coneConf int64

	// Per diff PO, lazily resolved universal verdicts. A PO is closed once
	// Solve(diffPO) with ALL activation variables free returns Unsat: no
	// activation combination — a fortiori no catalogued choice — can ever
	// flip it, so every later Verify skips its cone outright. A PO is open
	// when that universal solve is Sat (some combination differs); open POs
	// fall back to a per-choice assumption solve on every Verify.
	poClosed []bool
	poOpen   []bool

	stats SessionStats
}

// sweepConflictBudget bounds each SAT-sweeping equivalence attempt; failed
// or timed-out proofs simply skip the merge.
const sweepConflictBudget = 200

// NewSession builds the persistent miter for master with the given slots.
// It fails if the slot set is malformed, if a modification literal would
// create a combinational cycle through a slot gate (callers should fall
// back to one-shot Check in that case), or if the netlist is cyclic.
func NewSession(master *circuit.Circuit, slots []Slot, opts Options) (*Session, error) {
	if err := validateSlots(master, slots); err != nil {
		return nil, err
	}
	sess := &Session{
		master:  master,
		version: master.Version(),
		slots:   slots,
		opts:    opts,
		s:       sat.New(),
	}
	sp := obs.Start("cec.session_build")
	err := sess.build()
	sp.End()
	if err != nil {
		return nil, err
	}
	return sess, nil
}

func validateSlots(master *circuit.Circuit, slots []Slot) error {
	seen := make(map[circuit.NodeID]bool, len(slots))
	for i, sl := range slots {
		if int(sl.Gate) < 0 || int(sl.Gate) >= len(master.Nodes) {
			return fmt.Errorf("cec: slot %d: gate %d out of range", i, sl.Gate)
		}
		if master.Nodes[sl.Gate].IsPI {
			return fmt.Errorf("cec: slot %d: gate %q is a primary input", i, master.Nodes[sl.Gate].Name)
		}
		if seen[sl.Gate] {
			return fmt.Errorf("cec: slot %d: gate %q claimed by an earlier slot", i, master.Nodes[sl.Gate].Name)
		}
		seen[sl.Gate] = true
		for v, m := range sl.Options {
			if !m.Kind.Valid() {
				return fmt.Errorf("cec: slot %d option %d: invalid kind", i, v)
			}
			for _, l := range m.Lits {
				if int(l.Node) < 0 || int(l.Node) >= len(master.Nodes) {
					return fmt.Errorf("cec: slot %d option %d: literal node %d out of range", i, v, l.Node)
				}
				if l.Node == sl.Gate {
					return fmt.Errorf("cec: slot %d option %d: literal is the slot gate itself", i, v)
				}
			}
		}
	}
	return nil
}

// unionTopo computes a topological order of the union graph: all master
// fanin edges plus one edge lit.Node → slot.Gate for every modification
// literal. The instrumented instance reads its literals from the instance
// netlist, so a literal lying in the fanout cone of another slot makes the
// master's own topological order insufficient. A cycle in the union graph
// means some choice combination would be combinational-cyclic; the session
// refuses it.
func unionTopo(c *circuit.Circuit, slots []Slot) ([]circuit.NodeID, error) {
	n := len(c.Nodes)
	indeg := make([]int, n)
	adj := make([][]circuit.NodeID, n)
	for i := range c.Nodes {
		for _, f := range c.Nodes[i].Fanin {
			adj[f] = append(adj[f], circuit.NodeID(i))
			indeg[i]++
		}
	}
	for _, sl := range slots {
		for _, m := range sl.Options {
			for _, l := range m.Lits {
				adj[l.Node] = append(adj[l.Node], sl.Gate)
				indeg[sl.Gate]++
			}
		}
	}
	order := make([]circuit.NodeID, 0, n)
	queue := make([]circuit.NodeID, 0, n)
	for _, pi := range c.PIs {
		if indeg[pi] == 0 {
			queue = append(queue, pi)
		}
	}
	for i := range c.Nodes {
		if !c.Nodes[i].IsPI && indeg[i] == 0 {
			queue = append(queue, circuit.NodeID(i))
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, s := range adj[id] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("cec: modification literals create a combinational cycle (%d of %d nodes ordered); fall back to one-shot Check", len(order), n)
	}
	return order, nil
}

// structKey builds a canonical key for (kind, input literals): inputs are
// sorted, so the symmetric gate vocabulary hashes order-independently.
func structKey(buf []byte, kind logic.Kind, in []int) []byte {
	sorted := append([]int(nil), in...)
	sort.Ints(sorted)
	buf = append(buf[:0], byte(kind))
	var tmp [binary.MaxVarintLen64]byte
	for _, l := range sorted {
		n := binary.PutVarint(tmp[:], int64(l))
		buf = append(buf, tmp[:n]...)
	}
	return buf
}

// sweeper carries the simulation signatures and candidate buckets for the
// SAT-sweeping pre-pass.
type sweeper struct {
	sig     [][]uint64 // canonical signature per master node (nil: none)
	phase   []bool     // true when the signature was complemented
	buckets map[uint64][]sweepEntry
}

type sweepEntry struct {
	node  circuit.NodeID
	v     int // signed representative literal
	phase bool
}

// newSweeperAIG computes the same signatures as newSweeper from the packed
// word-parallel AIG kernel: each circuit node's stream is its AIG edge's
// positive-phase stream XOR the edge mask, which is bit-identical to the
// gate-level engine's values on the same vectors, so buckets — and therefore
// merge behaviour — are unchanged.
func newSweeperAIG(v *aig.View, nWords int, seed int64) *sweeper {
	c := v.C
	vec := sim.Random(len(c.PIs), nWords, seed)
	sw := &sweeper{
		sig:     make([][]uint64, len(c.Nodes)),
		phase:   make([]bool, len(c.Nodes)),
		buckets: make(map[uint64][]sweepEntry),
	}
	v.WithSim(vec.Words, nWords, func(val []uint64) {
		for id := range c.Nodes {
			words, mask := v.P.Stream(val, nWords, v.Refs[id])
			canon := make([]uint64, nWords)
			for w := range canon {
				canon[w] = words[w] ^ mask
			}
			if nWords > 0 && canon[0]&1 == 1 {
				for i := range canon {
					canon[i] = ^canon[i]
				}
				sw.phase[id] = true
			}
			sw.sig[id] = canon
		}
	})
	return sw
}

// newSweeper simulates the master on random vectors and canonicalizes each
// node's bit-signature up to complement, so functionally-equal and
// antivalent nodes land in the same bucket.
func newSweeper(c *circuit.Circuit, nWords int, seed int64) (*sweeper, error) {
	eng, err := sim.NewEngine(c)
	if err != nil {
		return nil, err
	}
	res, err := eng.Run(sim.Random(len(c.PIs), nWords, seed))
	if err != nil {
		return nil, err
	}
	sw := &sweeper{
		sig:     make([][]uint64, len(c.Nodes)),
		phase:   make([]bool, len(c.Nodes)),
		buckets: make(map[uint64][]sweepEntry),
	}
	for id := range c.Nodes {
		words := res.Node[id]
		if words == nil {
			continue
		}
		canon := make([]uint64, len(words))
		copy(canon, words)
		if len(canon) > 0 && canon[0]&1 == 1 {
			for i := range canon {
				canon[i] = ^canon[i]
			}
			sw.phase[id] = true
		}
		sw.sig[id] = canon
	}
	return sw, nil
}

func sigHash(sig []uint64) uint64 {
	h := uint64(14695981039346656037)
	for _, w := range sig {
		h ^= w
		h *= 1099511628211
	}
	return h
}

func sigEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// trySweep attempts to merge node (with fresh variable v) into an earlier
// representative with the same canonical signature, proving equivalence (or
// antivalence) with two bounded assumption solves. It returns the signed
// literal the node should use from now on.
func (sess *Session) trySweep(sw *sweeper, id circuit.NodeID, v int) int {
	sig := sw.sig[id]
	if sig == nil {
		return v
	}
	h := sigHash(sig)
	for _, e := range sw.buckets[h] {
		if !sigEqual(sw.sig[e.node], sig) {
			continue
		}
		// Same canonical signature: candidate for var ≡ ±rep.
		rep := e.v
		if sw.phase[id] != e.phase {
			rep = -rep
		}
		sess.stats.SweepSolves += 2
		if sess.provedEqual(v, rep) {
			sess.stats.Merged++
			return rep
		}
	}
	sw.buckets[h] = append(sw.buckets[h], sweepEntry{node: id, v: v, phase: sw.phase[id]})
	return v
}

// provedEqual runs the two bounded queries Unsat(a ∧ ¬b) and Unsat(¬a ∧ b);
// both together prove a ≡ b. Timeouts and counterexamples both report false.
func (sess *Session) provedEqual(a, b int) bool {
	s := sess.s
	saved := s.MaxConflicts
	defer func() { s.MaxConflicts = saved }()
	for _, pair := range [2][2]int{{a, -b}, {-a, b}} {
		s.MaxConflicts = s.Conflicts() + sweepConflictBudget
		st := s.Solve(pair[0], pair[1])
		// A Sat result leaves the model on the trail; clause addition
		// resumes after this, so drop back to the root level.
		s.BacktrackAll()
		if st != sat.Unsat {
			return false
		}
	}
	return true
}

// encodeHashed returns a signed literal for kind(in...), reusing an earlier
// structurally-identical encoding when possible.
func (sess *Session) encodeHashed(table map[string]int, keyBuf *[]byte, kind logic.Kind, in []int) (int, error) {
	*keyBuf = structKey(*keyBuf, kind, in)
	if v, ok := table[string(*keyBuf)]; ok {
		sess.stats.Hashed++
		return v, nil
	}
	out := sess.s.NewVar()
	if err := encodeGate(sess.s, kind, out, in); err != nil {
		return 0, err
	}
	table[string(*keyBuf)] = out
	return out, nil
}

// build constructs the full miter: swept master encoding, instrumented
// instance over the affected region, and the asserted output-difference
// disjunction.
func (sess *Session) build() error {
	c := sess.master
	order, err := unionTopo(c, sess.slots)
	if err != nil {
		return err
	}

	// Affected region: every node whose instance value can differ from the
	// master's — the slot gates and their transitive fanout in the union
	// graph (literal edges included, because an instance gate reads its
	// literals from the instance netlist).
	slotOf := make(map[circuit.NodeID]int, len(sess.slots))
	for i, sl := range sess.slots {
		slotOf[sl.Gate] = i
	}
	affected := make([]bool, len(c.Nodes))
	{
		adj := make([][]circuit.NodeID, len(c.Nodes))
		for i := range c.Nodes {
			for _, f := range c.Nodes[i].Fanin {
				adj[f] = append(adj[f], circuit.NodeID(i))
			}
		}
		for _, sl := range sess.slots {
			for _, m := range sl.Options {
				for _, l := range m.Lits {
					adj[l.Node] = append(adj[l.Node], sl.Gate)
				}
			}
		}
		stack := make([]circuit.NodeID, 0, len(sess.slots))
		for _, sl := range sess.slots {
			if !affected[sl.Gate] {
				affected[sl.Gate] = true
				stack = append(stack, sl.Gate)
			}
		}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, s := range adj[n] {
				if !affected[s] {
					affected[s] = true
					stack = append(stack, s)
				}
			}
		}
	}

	// Fraig pre-pass: decompose the master into its strashed AIG once. Two
	// circuit nodes whose edges address the same AIG node compute, by the
	// soundness of structural hashing, the same function (up to the edges'
	// complement bits), so the second one can alias the first one's solver
	// literal — the same merge SAT sweeping buys with two bounded solves,
	// obtained here for free and proved by construction rather than search.
	// fraigRep maps AIG node index → the signed literal of its positive
	// phase. Circuits the AIG cannot express fall back to hash+sweep alone.
	var fraigRefs []aig.Ref
	var fraigRep map[int]int
	var view *aig.View
	if v, err := aig.ViewFor(c); err == nil {
		view = v
		fraigRefs = v.Refs
		fraigRep = make(map[int]int, len(c.Nodes))
	}

	var sw *sweeper
	if sess.opts.SimWords > 0 {
		if view != nil {
			sw = newSweeperAIG(view, sess.opts.SimWords, sess.opts.Seed)
		} else {
			sw, err = newSweeper(c, sess.opts.SimWords, sess.opts.Seed)
			if err != nil {
				return err
			}
		}
	}

	// Master side, with fraiging, structural hashing and SAT sweeping.
	table := make(map[string]int, 2*len(c.Nodes))
	keyBuf := make([]byte, 0, 64)
	nodeVar := make([]int, len(c.Nodes))
	sess.piVars = make([]int, len(c.PIs))
	piIndex := make(map[circuit.NodeID]int, len(c.PIs))
	for i, pi := range c.PIs {
		piIndex[pi] = i
	}
	in := make([]int, 0, 8)
	for _, id := range order {
		nd := &c.Nodes[id]
		if nd.IsPI {
			v := sess.s.NewVar()
			nodeVar[id] = v
			sess.piVars[piIndex[id]] = v
			if fraigRep != nil {
				fraigRep[fraigRefs[id].Node()] = v
			}
			// Register the PI as a sweep representative (so buffers of a
			// PI can merge into it); never attempt to merge PIs themselves,
			// as a free input is equivalent to no prior function.
			if sw != nil && sw.sig[id] != nil {
				h := sigHash(sw.sig[id])
				sw.buckets[h] = append(sw.buckets[h], sweepEntry{node: id, v: v, phase: sw.phase[id]})
			}
			continue
		}
		// Fraig alias: an already-encoded node computes the same AIG node, so
		// this node is its (possibly complemented) literal; no clauses needed.
		// The constant node (index 0) is excluded — it has no variable to
		// alias and constant-function gates encode fine below.
		if fraigRep != nil {
			if n := fraigRefs[id].Node(); n != 0 {
				if rep, ok := fraigRep[n]; ok {
					if fraigRefs[id].Compl() {
						rep = -rep
					}
					nodeVar[id] = rep
					sess.stats.Fraiged++
					continue
				}
			}
		}
		in = in[:0]
		for _, f := range nd.Fanin {
			in = append(in, nodeVar[f])
		}
		keyBuf = structKey(keyBuf, nd.Kind, in)
		if v, ok := table[string(keyBuf)]; ok {
			sess.stats.Hashed++
			nodeVar[id] = v
		} else {
			v = sess.s.NewVar()
			if err := encodeGate(sess.s, nd.Kind, v, in); err != nil {
				return fmt.Errorf("cec: master node %q: %w", nd.Name, err)
			}
			table[string(keyBuf)] = v
			if sw != nil {
				v = sess.trySweep(sw, id, v)
			}
			nodeVar[id] = v
		}
		if fraigRep != nil {
			if n := fraigRefs[id].Node(); n != 0 {
				rep := nodeVar[id]
				if fraigRefs[id].Compl() {
					rep = -rep
				}
				fraigRep[n] = rep
			}
		}
	}

	// Instance side: only the affected region is re-encoded; everything
	// else shares the master's variables verbatim (the strongest merge).
	instVar := make([]int, len(c.Nodes))
	iv := func(f circuit.NodeID) int {
		if affected[f] {
			return instVar[f]
		}
		return nodeVar[f]
	}
	sess.act = make([][]int, len(sess.slots))
	for _, id := range order {
		if !affected[id] {
			continue
		}
		nd := &c.Nodes[id]
		in = in[:0]
		for _, f := range nd.Fanin {
			in = append(in, iv(f))
		}
		si, isSlot := slotOf[id]
		if !isSlot {
			v, err := sess.encodeHashed(table, &keyBuf, nd.Kind, in)
			if err != nil {
				return fmt.Errorf("cec: instance node %q: %w", nd.Name, err)
			}
			instVar[id] = v
			continue
		}
		// Slot gate: encode the base function and every option, then tie
		// the observable output o to the selected one via activation
		// literals: a_v → (o ↔ o_v), and (∧ ¬a_v) → (o ↔ o_base).
		sl := &sess.slots[si]
		base, err := sess.encodeHashed(table, &keyBuf, nd.Kind, in)
		if err != nil {
			return fmt.Errorf("cec: slot gate %q: %w", nd.Name, err)
		}
		o := sess.s.NewVar()
		instVar[id] = o
		acts := make([]int, len(sl.Options))
		for vi, m := range sl.Options {
			optIn := append(make([]int, 0, len(in)+len(m.Lits)), in...)
			for _, l := range m.Lits {
				lv := iv(l.Node)
				if l.Neg {
					lv = -lv
				}
				optIn = append(optIn, lv)
			}
			ov, err := sess.encodeHashed(table, &keyBuf, m.Kind, optIn)
			if err != nil {
				return fmt.Errorf("cec: slot gate %q option %d: %w", nd.Name, vi, err)
			}
			a := sess.s.NewVar()
			acts[vi] = a
			// a → (o ↔ o_v)
			if err := sess.s.AddClause(-a, -o, ov); err != nil {
				return err
			}
			if err := sess.s.AddClause(-a, o, -ov); err != nil {
				return err
			}
		}
		// (¬a_0 ∧ … ∧ ¬a_k) → (o ↔ o_base), as two clauses with all
		// activation literals positive.
		cl := make([]int, 0, len(acts)+2)
		cl = append(cl, acts...)
		if err := sess.s.AddClause(append(cl, -o, base)...); err != nil {
			return err
		}
		cl = cl[:len(acts)]
		if err := sess.s.AddClause(append(cl, o, -base)...); err != nil {
			return err
		}
		sess.act[si] = acts
	}

	// Miter outputs: only POs whose instance driver differs structurally
	// can ever differ; the rest are skipped outright. No global OR clause is
	// added — Verify output-splits, assuming one difference variable per
	// solve, so each proof works a single (usually small) cone and every
	// learned clause carries over to the remaining POs and later verifies.
	sess.diffPO = make([]int, len(c.POs))
	trivial := true
	for i, po := range c.POs {
		a, b := nodeVar[po.Driver], iv(po.Driver)
		if a == b {
			continue
		}
		x := sess.s.NewVar()
		if err := encodeXor2(sess.s, x, a, b); err != nil {
			return err
		}
		sess.diffPO[i] = x
		trivial = false
	}
	sess.trivial = trivial
	sess.poClosed = make([]bool, len(c.POs))
	sess.poOpen = make([]bool, len(c.POs))
	sess.order, sess.affected, sess.slotOf = order, affected, slotOf
	sess.stats.Vars = sess.s.NumVars()
	sess.stats.Clauses = sess.s.NumClauses()
	// Freeze the build-phase SAT work and zero the solver counters, so the
	// session's verify-phase stats (and per-copy attribution by callers)
	// start from a clean slate on the reused solver.
	sess.stats.BuildDecisions, sess.stats.BuildPropagations, sess.stats.BuildConflicts = sess.s.Stats()
	sess.s.ResetStats()
	mSessions.Inc()
	mMiterVars.Add(int64(sess.stats.Vars))
	mMiterClauses.Add(int64(sess.stats.Clauses))
	mNodesHashed.Add(int64(sess.stats.Hashed))
	mNodesFraiged.Add(int64(sess.stats.Fraiged))
	mNodesMerged.Add(int64(sess.stats.Merged))
	mSweepSolves.Add(int64(sess.stats.SweepSolves))
	return nil
}

// Verify decides whether the fingerprint copy selected by choice is
// equivalent to the master. choice has one entry per slot: -1 leaves the
// slot's gate unmodified, v ≥ 0 applies Options[v]. The verdict matches
// what Check(master, instance) would return for the materialized instance.
func (sess *Session) Verify(choice []int) (Verdict, error) {
	return sess.VerifyCtx(context.Background(), choice)
}

// VerifyCtx is Verify with cooperative cancellation. When ctx is done the
// in-flight SAT solve stops at its next poll and the context error is
// returned; the session stays usable — a PO interrupted mid-close is left
// unresolved and is retried on the next call.
func (sess *Session) VerifyCtx(ctx context.Context, choice []int) (Verdict, error) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.master.Version() != sess.version {
		return Verdict{}, fmt.Errorf("cec: session stale: master circuit was modified (version %d → %d); rebuild the session", sess.version, sess.master.Version())
	}
	if len(choice) != len(sess.slots) {
		return Verdict{}, fmt.Errorf("cec: choice has %d entries for %d slots", len(choice), len(sess.slots))
	}
	assumptions := make([]int, 0, len(choice))
	for i, v := range choice {
		if v < -1 || v >= len(sess.slots[i].Options) {
			return Verdict{}, fmt.Errorf("cec: slot %d: option %d out of range", i, v)
		}
		for vi, a := range sess.act[i] {
			if vi == v {
				assumptions = append(assumptions, a)
			} else {
				assumptions = append(assumptions, -a)
			}
		}
	}
	sess.stats.Verifies++
	mVerifies.Inc()
	if sess.trivial {
		return Verdict{Equivalent: true, Proved: true}, nil
	}
	// The conflict budget, when set, covers the whole verification (all
	// output cones), mirroring the one-shot miter's budget.
	if sess.opts.MaxConflicts > 0 {
		sess.s.MaxConflicts = sess.s.Conflicts() + sess.opts.MaxConflicts
	} else {
		sess.s.MaxConflicts = 0
	}
	// Universal pass: try to close each unresolved PO once and for all by
	// solving its difference with every activation variable left free. Unsat
	// there subsumes all choices, so the cone never needs solving again —
	// for a sound catalogue the first Verify closes every PO and later calls
	// return without touching the solver. A Sat or budget-exhausted outcome
	// marks the PO open; only open POs pay a per-choice solve below. Each
	// closing runs on a throwaway cone-local miter (closeCone) rather than
	// inside the session formula, so the search never leaves the PO's own
	// fanin cone; remaining tracks the conflict budget it consumes, and the
	// shared solver's allowance shrinks to whatever is left.
	remaining := sess.opts.MaxConflicts
	for i, x := range sess.diffPO {
		if x == 0 || sess.poClosed[i] || sess.poOpen[i] {
			continue
		}
		sess.stats.UniversalSolves++
		mUniversalSolves.Inc()
		st, err := sess.closeCone(ctx, i, &remaining)
		if err != nil {
			// Cancelled mid-close: leave the PO unresolved so a later call
			// retries the universal solve.
			return Verdict{}, err
		}
		switch st {
		case sat.Unsat:
			sess.poClosed[i] = true
			sess.stats.ClosedPOs++
			mConesClosed.Inc()
		default:
			sess.poOpen[i] = true
		}
	}
	if sess.opts.MaxConflicts > 0 {
		m := sess.s.Conflicts() + remaining
		if m < 1 {
			// Cone closings spent the whole allowance: any further search
			// must stop at its first conflict.
			m = 1
		}
		sess.s.MaxConflicts = m
	}
	// Per-choice pass over the open POs, output-split: each solve assumes
	// the activation literals plus one difference variable. Learned clauses
	// and the shared assumption-prefix trail persist across cones and calls.
	nAss := len(assumptions)
	for i, x := range sess.diffPO {
		if x == 0 || sess.poClosed[i] {
			continue
		}
		sess.stats.AssumptionSolves++
		mAssumptionSolves.Inc()
		st, err := sess.s.SolveCtx(ctx, append(assumptions[:nAss:nAss], x)...)
		if err != nil {
			return Verdict{}, err
		}
		switch st {
		case sat.Unsat:
			continue
		case sat.Sat:
			cex := make([]bool, len(sess.piVars))
			for pi, v := range sess.piVars {
				cex[pi] = sess.s.Value(v)
			}
			sess.s.BacktrackAll()
			return Verdict{Equivalent: false, Proved: true, Counterexample: cex, PO: sess.master.POs[i].Name}, nil
		default:
			return Verdict{}, fmt.Errorf("%w (%d conflicts)", ErrBudgetExhausted, sess.opts.MaxConflicts)
		}
	}
	return Verdict{Equivalent: true, Proved: true}, nil
}

// closeCone runs one universal closing solve on a throwaway cone-local
// miter: a fresh solver encodes only the transitive fanin cone of the PO's
// driver — master side, instrumented instance side, and the activation
// structure of the slots inside it — instead of assuming the difference
// variable inside the full session formula. Both formulas encode the same
// Boolean functions over the same cone, so Unsat here proves the PO
// unreachable under every activation combination exactly as the global
// solve would, while the search space shrinks from every variable in the
// miter to the cone's few dozen. Sat likewise transfers: a cone model
// extends to a full-circuit model by evaluating the remaining gates in
// topological order, so the PO really is open. When the session carries a
// conflict budget, the solve is bounded by *remaining and its consumption
// is deducted.
func (sess *Session) closeCone(ctx context.Context, po int, remaining *int64) (sat.Status, error) {
	c := sess.master
	d := c.POs[po].Driver
	// Cone membership over the union graph: master fanin edges plus, for
	// slot gates, their option literal reads (an instance gate reads its
	// literals from the instance netlist).
	inCone := make([]bool, len(c.Nodes))
	stack := append(make([]circuit.NodeID, 0, 64), d)
	inCone[d] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range c.Nodes[n].Fanin {
			if !inCone[f] {
				inCone[f] = true
				stack = append(stack, f)
			}
		}
		if si, ok := sess.slotOf[n]; ok {
			for _, m := range sess.slots[si].Options {
				for _, l := range m.Lits {
					if !inCone[l.Node] {
						inCone[l.Node] = true
						stack = append(stack, l.Node)
					}
				}
			}
		}
	}

	s := sat.New()
	if sess.opts.MaxConflicts > 0 {
		if *remaining < 1 {
			return sat.Unknown, nil
		}
		s.MaxConflicts = *remaining
	}
	defer func() {
		dec, prop, conf := s.Stats()
		sess.coneDec += dec
		sess.coneProp += prop
		sess.coneConf += conf
		*remaining -= conf
	}()

	// Master side of the cone, in the union topological order (which also
	// respects literal edges, so every variable a slot gate reads exists by
	// the time the gate is encoded).
	mv := make([]int, len(c.Nodes))
	iv2 := make([]int, len(c.Nodes))
	ivOf := func(f circuit.NodeID) int {
		if sess.affected[f] {
			return iv2[f]
		}
		return mv[f]
	}
	in := make([]int, 0, 8)
	for _, id := range sess.order {
		if !inCone[id] {
			continue
		}
		nd := &c.Nodes[id]
		if nd.IsPI {
			mv[id] = s.NewVar()
			continue
		}
		in = in[:0]
		for _, f := range nd.Fanin {
			in = append(in, mv[f])
		}
		v := s.NewVar()
		if err := encodeGate(s, nd.Kind, v, in); err != nil {
			return sat.Unknown, fmt.Errorf("cec: cone master node %q: %w", nd.Name, err)
		}
		mv[id] = v
	}

	// Instance side: only affected cone nodes re-encode; everything else
	// shares the master's cone variables. Activation variables are fresh and
	// unconstrained — exactly the all-activations-free universal query.
	for _, id := range sess.order {
		if !inCone[id] || !sess.affected[id] {
			continue
		}
		nd := &c.Nodes[id]
		in = in[:0]
		for _, f := range nd.Fanin {
			in = append(in, ivOf(f))
		}
		si, isSlot := sess.slotOf[id]
		if !isSlot {
			v := s.NewVar()
			if err := encodeGate(s, nd.Kind, v, in); err != nil {
				return sat.Unknown, fmt.Errorf("cec: cone instance node %q: %w", nd.Name, err)
			}
			iv2[id] = v
			continue
		}
		sl := &sess.slots[si]
		base := s.NewVar()
		if err := encodeGate(s, nd.Kind, base, in); err != nil {
			return sat.Unknown, fmt.Errorf("cec: cone slot gate %q: %w", nd.Name, err)
		}
		o := s.NewVar()
		iv2[id] = o
		acts := make([]int, len(sl.Options))
		for vi, m := range sl.Options {
			optIn := append(make([]int, 0, len(in)+len(m.Lits)), in...)
			for _, l := range m.Lits {
				lv := ivOf(l.Node)
				if l.Neg {
					lv = -lv
				}
				optIn = append(optIn, lv)
			}
			ov := s.NewVar()
			if err := encodeGate(s, m.Kind, ov, optIn); err != nil {
				return sat.Unknown, fmt.Errorf("cec: cone slot gate %q option %d: %w", nd.Name, vi, err)
			}
			a := s.NewVar()
			acts[vi] = a
			if err := s.AddClause(-a, -o, ov); err != nil {
				return sat.Unknown, err
			}
			if err := s.AddClause(-a, o, -ov); err != nil {
				return sat.Unknown, err
			}
		}
		cl := make([]int, 0, len(acts)+2)
		cl = append(cl, acts...)
		if err := s.AddClause(append(cl, -o, base)...); err != nil {
			return sat.Unknown, err
		}
		cl = cl[:len(acts)]
		if err := s.AddClause(append(cl, o, -base)...); err != nil {
			return sat.Unknown, err
		}
	}

	x := s.NewVar()
	if err := encodeXor2(s, x, mv[d], ivOf(d)); err != nil {
		return sat.Unknown, err
	}
	return s.SolveCtx(ctx, x)
}

// Slots returns the number of slots the session was built with.
func (sess *Session) Slots() int { return len(sess.slots) }

// Stats returns a snapshot of the session's counters. The solver-level
// Decisions/Propagations/Conflicts cover the verify phase only; build-phase
// work is frozen in the Build* fields.
func (sess *Session) Stats() SessionStats {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	st := sess.stats
	st.Vars = sess.s.NumVars()
	st.Clauses = sess.s.NumClauses()
	st.Decisions, st.Propagations, st.Conflicts = sess.s.Stats()
	st.Decisions += sess.coneDec
	st.Propagations += sess.coneProp
	st.Conflicts += sess.coneConf
	return st
}
