package cec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/sim"
)

func fig1(t *testing.T) *circuit.Circuit {
	t.Helper()
	c := circuit.New("fig1")
	a, _ := c.AddPI("A")
	b, _ := c.AddPI("B")
	d, _ := c.AddPI("C")
	e, _ := c.AddPI("D")
	x, _ := c.AddGate("X", logic.And, a, b)
	y, _ := c.AddGate("Y", logic.Or, d, e)
	f, _ := c.AddGate("F", logic.And, x, y)
	if err := c.AddPO("F", f); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestEquivalentToSelf(t *testing.T) {
	a := fig1(t)
	b := fig1(t)
	v, err := Check(a, b, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equivalent || !v.Proved {
		t.Fatalf("self-equivalence failed: %+v", v)
	}
}

func TestFig1Fingerprint(t *testing.T) {
	a := fig1(t)
	b := fig1(t)
	// Paper Fig. 1 right: X additionally reads Y.
	if err := b.AddFanin(b.MustLookup("X"), b.MustLookup("Y")); err != nil {
		t.Fatal(err)
	}
	if err := MustEquivalent(a, b); err != nil {
		t.Fatal(err)
	}
	// Fig. 2 variants: X' = AND(A, B, Y) with OR(C, D) replaced by
	// OR(C, D, A') — wait, Fig. 2 feeds X into Y's OR instead; an OR gate
	// reading the AND output X is NOT function-preserving in general, so
	// check the true Fig. 2 form: Y = OR(C, D, X·something)? The paper's
	// Fig. 2 shows two more equivalent implementations; we verify the
	// canonical one: Y reads X with OR identity when X=0... OR(C,D,X)
	// changes F only when C=D=0 and X=1: F = X·Y = X·X = X vs original
	// X·0 = 0 — differs! So OR(C,D,X) is NOT equivalent; confirm the
	// checker catches it.
	cbad := fig1(t)
	if err := cbad.AddFanin(cbad.MustLookup("Y"), cbad.MustLookup("X")); err != nil {
		t.Fatal(err)
	}
	v, err := Check(a, cbad, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if v.Equivalent {
		t.Fatal("checker missed a real functional change")
	}
	if v.PO != "F" || v.Counterexample == nil {
		t.Errorf("counterexample missing: %+v", v)
	}
	// Replay the counterexample.
	oa, _ := sim.EvalOne(a, v.Counterexample)
	ob, _ := sim.EvalOne(cbad, v.Counterexample)
	if oa[0] == ob[0] {
		t.Error("counterexample does not distinguish the circuits")
	}
}

func TestSimPrePassDisabled(t *testing.T) {
	// With SimWords=0 the SAT path must find the counterexample itself.
	a := fig1(t)
	b := fig1(t)
	if err := b.AddFanin(b.MustLookup("Y"), b.MustLookup("X")); err != nil {
		t.Fatal(err)
	}
	v, err := Check(a, b, Options{SimWords: 0})
	if err != nil {
		t.Fatal(err)
	}
	if v.Equivalent {
		t.Fatal("SAT path missed inequivalence")
	}
	oa, _ := sim.EvalOne(a, v.Counterexample)
	ob, _ := sim.EvalOne(b, v.Counterexample)
	if oa[0] == ob[0] {
		t.Error("SAT counterexample invalid")
	}
}

func TestInterfaceMismatch(t *testing.T) {
	a := fig1(t)
	b := circuit.New("other")
	p, _ := b.AddPI("Z")
	g, _ := b.AddGate("g", logic.Inv, p)
	if err := b.AddPO("o", g); err != nil {
		t.Fatal(err)
	}
	if _, err := Check(a, b, DefaultOptions()); err == nil {
		t.Error("interface mismatch accepted")
	}
}

// randomCircuit builds a random DAG circuit over fixed PI/PO names.
func randomCircuit(rng *rand.Rand, name string, nPI, nGates int) *circuit.Circuit {
	c := circuit.New(name)
	ids := make([]circuit.NodeID, 0, nPI+nGates)
	for i := 0; i < nPI; i++ {
		id, _ := c.AddPI("pi" + string(rune('a'+i)))
		ids = append(ids, id)
	}
	kinds := []logic.Kind{logic.And, logic.Or, logic.Nand, logic.Nor, logic.Xor, logic.Xnor, logic.Inv}
	for g := 0; g < nGates; g++ {
		k := kinds[rng.Intn(len(kinds))]
		n := k.MinFanin()
		fanin := make([]circuit.NodeID, 0, n)
		seen := map[circuit.NodeID]bool{}
		for len(fanin) < n {
			f := ids[rng.Intn(len(ids))]
			if seen[f] {
				continue
			}
			seen[f] = true
			fanin = append(fanin, f)
		}
		id, err := c.AddGate("g"+string(rune('A'+g%26))+string(rune('0'+g/26)), k, fanin...)
		if err != nil {
			panic(err)
		}
		ids = append(ids, id)
	}
	if err := c.AddPO("out", ids[len(ids)-1]); err != nil {
		panic(err)
	}
	if err := c.AddPO("out2", ids[len(ids)/2]); err != nil {
		panic(err)
	}
	return c
}

// TestAgainstExhaustiveSim: the SAT verdict must agree with exhaustive
// simulation on random circuit pairs (sharing PIs, usually inequivalent, and
// equivalent when compared against a clone).
func TestAgainstExhaustiveSim(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nPI := 3 + rng.Intn(4)
		a := randomCircuit(rng, "a", nPI, 5+rng.Intn(15))
		// Equivalent pair: clone.
		v, err := Check(a, a.Clone(), Options{SimWords: 2, Seed: seed})
		if err != nil || !v.Equivalent {
			t.Logf("seed %d: clone not equivalent: %v %v", seed, v, err)
			return false
		}
		// Random pair: SAT verdict must match exhaustive simulation.
		b := randomCircuit(rand.New(rand.NewSource(seed^0x9E37)), "a", nPI, 5+rng.Intn(15))
		want, _, err := sim.EquivalentExhaustive(a, b)
		if err != nil {
			t.Logf("seed %d: sim err %v", seed, err)
			return false
		}
		got, err := Check(a, b, Options{SimWords: 1, Seed: seed})
		if err != nil {
			t.Logf("seed %d: cec err %v", seed, err)
			return false
		}
		if got.Equivalent != want {
			t.Logf("seed %d: cec=%v sim=%v", seed, got.Equivalent, want)
			return false
		}
		if !got.Equivalent {
			oa, _ := sim.EvalOne(a, got.Counterexample)
			ob, _ := sim.EvalOne(b, got.Counterexample)
			same := true
			for i := range oa {
				if oa[i] != ob[i] {
					same = false
				}
			}
			if same {
				t.Logf("seed %d: bogus counterexample", seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestConstAndWideGates(t *testing.T) {
	// Exercise Const0/Const1, Buf and wide/XOR gates through the encoder.
	mk := func() *circuit.Circuit {
		c := circuit.New("k")
		a, _ := c.AddPI("a")
		b, _ := c.AddPI("b")
		d, _ := c.AddPI("d")
		z, _ := c.AddGate("zero", logic.Const0)
		o, _ := c.AddGate("one", logic.Const1)
		bf, _ := c.AddGate("bf", logic.Buf, a)
		w, _ := c.AddGate("w", logic.And, a, b, d)
		x, _ := c.AddGate("x", logic.Xor, w, bf, o)
		y, _ := c.AddGate("y", logic.Xnor, x, z, b)
		n, _ := c.AddGate("n", logic.Nor, y, w, d)
		if err := c.AddPO("o", n); err != nil {
			panic(err)
		}
		return c
	}
	a, b := mk(), mk()
	if err := MustEquivalent(a, b); err != nil {
		t.Fatal(err)
	}
	// Exhaustive sim agreement as ground truth.
	eq, _, err := sim.EquivalentExhaustive(a, b)
	if err != nil || !eq {
		t.Fatalf("sim disagrees: %v %v", eq, err)
	}
	// Flip one gate: must be caught.
	c := mk()
	if err := c.SetKind(c.MustLookup("n"), logic.Or); err != nil {
		t.Fatal(err)
	}
	v, err := Check(a, c, Options{SimWords: 0})
	if err != nil {
		t.Fatal(err)
	}
	if v.Equivalent {
		t.Fatal("NOR→OR flip not caught")
	}
}

func TestBudgetExhaustion(t *testing.T) {
	// A tiny budget on a non-trivially-equivalent pair must error, not lie.
	mk := func() *circuit.Circuit {
		rng := rand.New(rand.NewSource(5))
		return randomCircuit(rng, "a", 8, 60)
	}
	a, b := mk(), mk()
	// XOR-heavy random circuits with conflict budget 1: likely Unknown.
	_, err := Check(a, b, Options{SimWords: 0, MaxConflicts: 1})
	if err == nil {
		// Acceptable: solved within one conflict. Not an error.
		t.Log("solved within budget (acceptable)")
	}
}
