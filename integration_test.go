package odcfp_test

import (
	"bytes"
	"fmt"
	"math/big"
	"os"
	"path/filepath"
	"testing"

	"repro"
	"repro/internal/bench"
	"repro/internal/circuit"
	"repro/internal/logic"
	"repro/internal/sim"
)

// readFixture loads one of the committed testdata netlists through the
// format-appropriate facade reader.
func readFixture(t *testing.T, name string) *odcfp.Circuit {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var c *odcfp.Circuit
	switch filepath.Ext(name) {
	case ".blif":
		c, err = odcfp.ReadBLIF(f, odcfp.DefaultLibrary())
	case ".v":
		c, err = odcfp.ReadVerilog(f)
	case ".bench":
		c, err = odcfp.ReadBench(f)
	default:
		t.Fatalf("unknown fixture format %s", name)
	}
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return c
}

// TestFixtureSemantics checks the parsed fixtures compute their documented
// functions.
func TestFixtureSemantics(t *testing.T) {
	maj := readFixture(t, "majority.blif")
	for m := 0; m < 8; m++ {
		a, b, c := m&1 == 1, m&2 == 2, m&4 == 4
		out, err := sim.EvalOne(maj, []bool{a, b, c})
		if err != nil {
			t.Fatal(err)
		}
		wantMaj := (a && b) || (a && c) || (b && c)
		wantPar := a != b != c
		if out[0] != wantMaj || out[1] != wantPar {
			t.Errorf("majpar(%v,%v,%v) = %v,%v want %v,%v", a, b, c, out[0], out[1], wantMaj, wantPar)
		}
	}
	mux := readFixture(t, "mux4.v")
	for m := 0; m < 64; m++ {
		in := make([]bool, 6)
		for i := range in {
			in[i] = m>>uint(i)&1 == 1
		}
		d := in[:4]
		sel := 0
		if in[4] {
			sel |= 1
		}
		if in[5] {
			sel |= 2
		}
		out, err := sim.EvalOne(mux, in)
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != d[sel] {
			t.Errorf("mux4 pattern %d: got %v want %v", m, out[0], d[sel])
		}
	}
}

// TestFileLevelFingerprintFlow is the full user journey over real files:
// parse → fingerprint → serialise → re-parse → extract → verify, across
// all three formats.
func TestFileLevelFingerprintFlow(t *testing.T) {
	lib := odcfp.DefaultLibrary()
	for _, fixture := range []string{"majority.blif", "c17.bench", "mux4.v"} {
		fixture := fixture
		t.Run(fixture, func(t *testing.T) {
			c := readFixture(t, fixture)
			a, err := odcfp.Analyze(c, lib)
			if err != nil {
				t.Fatal(err)
			}
			if a.NumLocations() == 0 {
				t.Skipf("%s has no fingerprint locations", fixture)
			}
			v := big.NewInt(5)
			v.Mod(v, a.Combinations())
			res, err := odcfp.Fingerprint(c, lib, v)
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Verify(); err != nil {
				t.Fatal(err)
			}
			// Serialise the fingerprinted netlist as Verilog and .bench,
			// re-read, and extract from both.
			for _, format := range []string{"verilog", "bench"} {
				var buf bytes.Buffer
				var back *odcfp.Circuit
				switch format {
				case "verilog":
					if err := odcfp.WriteVerilog(&buf, res.Fingerprinted); err != nil {
						t.Fatal(err)
					}
					back, err = odcfp.ReadVerilog(&buf)
				case "bench":
					if err := odcfp.WriteBench(&buf, res.Fingerprinted); err != nil {
						t.Fatal(err)
					}
					back, err = odcfp.ReadBench(&buf)
				}
				if err != nil {
					t.Fatalf("%s round trip: %v", format, err)
				}
				asg, err := odcfp.Extract(res.Analysis, back)
				if err != nil {
					t.Fatalf("%s extract: %v", format, err)
				}
				got, err := res.Analysis.IntFromAssignment(asg)
				if err != nil {
					t.Fatal(err)
				}
				if got.Cmp(v) != 0 {
					t.Errorf("%s: fingerprint %s survived as %s", format, v, got)
				}
			}
		})
	}
}

// TestMultiplierStaysAMultiplier is a known-answer end-to-end check: after
// full fingerprinting, a 6×6 array multiplier must still multiply — not
// merely be "equivalent to itself" but correct against integer arithmetic.
func TestMultiplierStaysAMultiplier(t *testing.T) {
	lib := odcfp.DefaultLibrary()
	c := bench.Multiplier(6)
	res, err := odcfp.Fingerprint(c, lib, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Analysis.NumLocations() == 0 {
		t.Fatal("multiplier has no locations")
	}
	fp := res.Fingerprinted
	for a := 0; a < 64; a += 7 {
		for b := 0; b < 64; b += 5 {
			in := make([]bool, 12)
			for i := 0; i < 6; i++ {
				in[i] = a>>uint(i)&1 == 1
				in[6+i] = b>>uint(i)&1 == 1
			}
			out, err := sim.EvalOne(fp, in)
			if err != nil {
				t.Fatal(err)
			}
			got := 0
			for i := range out {
				if out[i] {
					got |= 1 << uint(i)
				}
			}
			if got != a*b {
				t.Fatalf("fingerprinted multiplier: %d×%d = %d, got %d", a, b, a*b, got)
			}
		}
	}
}

// TestResynthesisAttack documents the paper-scope boundary (EXPERIMENTS.md
// E13): an attacker who resynthesises a pirated copy gets a functionally
// identical netlist on which structural fingerprint extraction fails. The
// function (and hence the IP value) is preserved — proved by SAT — but the
// diff-based extractor no longer finds the named gates. This is exactly why
// the paper pairs fingerprints with a watermark and targets post-layout IP
// forms (gate-level layout), where resynthesis means a full re-implementation.
func TestResynthesisAttack(t *testing.T) {
	lib := odcfp.DefaultLibrary()
	c, err := odcfp.Benchmark("c432")
	if err != nil {
		t.Fatal(err)
	}
	res, err := odcfp.Fingerprint(c, lib, nil)
	if err != nil {
		t.Fatal(err)
	}
	pirated, err := odcfp.Resynthesize(res.Fingerprinted)
	if err != nil {
		t.Fatal(err)
	}
	// The attack preserves the function…
	if err := odcfp.Equivalent(res.Analysis.Circuit, pirated); err != nil {
		t.Fatalf("resynthesis broke the function: %v", err)
	}
	// …but defeats structural extraction.
	if _, err := odcfp.Extract(res.Analysis, pirated); err == nil {
		t.Error("extraction unexpectedly survived resynthesis; E13 in EXPERIMENTS.md is stale")
	}
}

// TestResynthesizeOptimizes: the AIG round trip is also a legitimate
// optimisation pass — on an unbalanced same-kind chain, balance exploits
// associativity and cuts the depth to O(log n) while the function is
// preserved. (Alternating AND/OR chains have no associativity to exploit,
// and XOR-heavy circuits may even deepen: one XOR cell is two AIG levels.)
func TestResynthesizeOptimizes(t *testing.T) {
	c := odcfpCircuitChain(t, 24)
	out, err := odcfp.Resynthesize(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := odcfp.Equivalent(c, out); err != nil {
		t.Fatal(err)
	}
	if got, orig := out.Stats().Depth, c.Stats().Depth; got >= orig/2 {
		t.Errorf("balance left the chain deep: %d → %d", orig, got)
	}
}

// odcfpCircuitChain builds a deliberately unbalanced AND chain over n
// inputs (depth n−1 before balancing, ~log₂ n after).
func odcfpCircuitChain(t *testing.T, n int) *odcfp.Circuit {
	t.Helper()
	c := circuit.New("chain")
	acc, err := c.AddPI("p0")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		pi, err := c.AddPI(fmt.Sprintf("p%d", i))
		if err != nil {
			t.Fatal(err)
		}
		acc, err = c.AddGate(fmt.Sprintf("g%d", i), logic.And, acc, pi)
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AddPO("y", acc); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestFixtureSDCFlow runs the SDC variant over a file fixture.
func TestFixtureSDCFlow(t *testing.T) {
	lib := odcfp.DefaultLibrary()
	c := readFixture(t, "majority.blif")
	a, err := odcfp.AnalyzeSDC(c, lib)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumLocations() == 0 {
		t.Skip("no SDCs in fixture")
	}
	bits := make([]bool, a.NumLocations())
	for i := range bits {
		bits[i] = true
	}
	fp, err := odcfp.EmbedSDC(a, bits)
	if err != nil {
		t.Fatal(err)
	}
	if err := odcfp.Equivalent(c, fp); err != nil {
		t.Fatal(err)
	}
	got, err := odcfp.ExtractSDC(a, fp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bits {
		if got[i] != bits[i] {
			t.Errorf("SDC bit %d mismatch", i)
		}
	}
}
