# Convenience targets; everything is plain `go` underneath (stdlib only).

GO ?= go

.PHONY: all build test vet bench bench-analyze bench-analyze-smoke bench-attack bench-verify bench-serve bench-serve-cluster serve-smoke cluster-smoke partition-smoke chaos-cluster attack-smoke chaos experiments reproduce doccheck fuzz cover ci clean

all: build vet test

# Everything the CI workflow runs: formatting, vet, doc lint, build, the
# full race-enabled test suite, a short fuzz pass over the three netlist
# parsers and the red-team spec reader, the fault-injected chaos smoke, the
# daemon, cluster and partition process-level smokes, and the red-team
# attack smoke.
ci: doccheck
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
	$(GO) test -fuzz=FuzzParse -fuzztime=10s ./internal/blif/
	$(GO) test -fuzz=FuzzParse -fuzztime=10s ./internal/benchfmt/
	$(GO) test -fuzz=FuzzParse -fuzztime=10s ./internal/verilog/
	$(GO) test -fuzz=FuzzParseSpec -fuzztime=10s ./internal/redteam/
	$(MAKE) chaos
	$(MAKE) serve-smoke
	$(MAKE) cluster-smoke
	$(MAKE) partition-smoke
	$(MAKE) attack-smoke
	$(MAKE) bench-analyze-smoke

# Chaos smoke: the daemon's fault-injection suite (DESIGN.md §10) under the
# race detector — injected store failures, SAT stalls and budget exhaustion,
# pool saturation — asserting no acknowledged issuance is lost, no slot or
# goroutine leaks, and every degraded response is labeled. The run's metric
# snapshot lands in chaos-metrics.json (CI uploads it as an artifact).
chaos:
	CHAOS_METRICS_OUT=$(CURDIR)/chaos-metrics.json \
		$(GO) test -race -count=1 -run 'TestChaos' ./internal/serve/

# Daemon smoke: start odcfpd, run a concurrent loadgen burst, SIGTERM-drain,
# restart on the same store and prove no issued fingerprint was lost, then
# drive /issue/batch and a durable async job end-to-end, requiring the batch
# path to beat serial issue by ≥5× (scripts/serve_smoke.sh). The
# race-enabled service tests run first.
serve-smoke:
	$(GO) test -race -count=1 ./internal/serve/...
	GO=$(GO) MIN_SPEEDUP=5 scripts/serve_smoke.sh

# Full-size service benchmark: ≥1000 mixed issue/trace requests over 8
# concurrent clients with a mid-run restart, then a 4096-copy async batch
# mint that must beat serial issue by ≥20×; writes BENCH_serve.json.
bench-serve:
	GO=$(GO) MIN_SPEEDUP=20 scripts/serve_smoke.sh 1000 8 BENCH_serve.json 4096

# Red-team smoke: the security-evaluation gates on c432 only — DIP-loop
# IO-indistinguishability certificate, hardening must cut bits-recovered,
# and a live 3-coalition trace against an in-process daemon must keep the
# coalition implicated without accusing innocents (cmd/attackbench -smoke).
attack-smoke:
	$(GO) run ./cmd/attackbench -smoke -o BENCH_attack.json

# Full red-team benchmark over c432/c880/c1355 with the default campaign
# spec: per-circuit bits-recovered vs fingerprint size, unhardened and
# hardened, DIP certificates, and live coalition-trace outcomes for every
# merge strategy; writes BENCH_attack.json (EXPERIMENTS.md security section).
bench-attack:
	$(GO) run ./cmd/attackbench -o BENCH_attack.json

# Cluster smoke: three odcfpd replicas on loopback, a mixed issue/trace load
# across all of them, kill -9 one replica mid-run, then require zero failures
# and full registry convergence on the survivors (scripts/cluster_smoke.sh).
cluster-smoke:
	GO=$(GO) scripts/cluster_smoke.sh 400 8 cluster_smoke.json

# Partition smoke: the in-process partition and bit-flip chaos tests under
# the race detector, then three real odcfpd processes with an armed
# net.partition fault plan severing one replica — the majority must keep
# acking, hinted handoff must drain after the heal, and all three replicas
# must converge without an explicit sync (scripts/partition_smoke.sh). The
# per-replica metric snapshots land in partition-metrics.json (CI artifact).
partition-smoke:
	$(GO) test -race -count=1 -run 'TestChaosClusterPartition|TestChaosClusterScrubBitFlip' ./internal/serve/
	GO=$(GO) scripts/partition_smoke.sh 300 8 partition_smoke.json

# Full partition chaos run: a longer load, a longer partition window and a
# tighter failure budget than the CI smoke, for soak-testing the handoff
# and scrubber paths on dedicated hardware.
chaos-cluster:
	$(GO) test -race -count=5 -run 'TestChaosClusterPartition|TestChaosClusterScrubBitFlip' ./internal/serve/
	GO=$(GO) PART_FOR=8s MAXFAIL=20 scripts/partition_smoke.sh 2000 16 partition_smoke.json

# Cluster benchmark: the BENCH_serve.json `cluster` section. Measures a
# single-node baseline on mature registries (20k preseeded copies per design,
# where the snapshot store pays an O(n) rewrite per issuance), then the same
# load over 4 replicas on the O(1)-append WAL store; fails below a 3× scale.
bench-serve-cluster:
	GO=$(GO) KILL=0 REPLICAS=4 DESIGNS=4 PRESEED=20000 MIN_SCALE=3 \
		scripts/cluster_smoke.sh 2000 16 BENCH_serve.json

# Godoc lint: every package needs a package comment, every exported
# declaration a doc comment (internal/tools/doccheck).
doccheck:
	$(GO) run ./internal/tools/doccheck .

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Regenerate every table/figure of the paper (also: go test -bench=Table2 .)
experiments:
	$(GO) run ./cmd/experiments -all

# Full reproduction pipeline (README "Reproducing the paper's tables"):
# run every experiment, emit the machine-readable manifest, render it to
# Markdown. The tables in EXPERIMENTS.md come from exactly this pipeline.
reproduce:
	$(GO) run ./cmd/experiments -all -report runreport.json
	$(GO) run ./cmd/report -o tables.md runreport.json
	@echo "wrote runreport.json and tables.md"

bench:
	$(GO) test -bench=. -benchmem .

# Incremental-verification baseline: 64 fingerprint copies through the
# persistent cec.Session vs 64 cold cec.Check miters; writes BENCH_verify.json
# and fails below a 3× speedup or on any verdict mismatch.
bench-verify:
	$(GO) run ./cmd/benchverify

# Analysis-core baseline: packed Analyze vs the reference baseline scan, plus
# post-Embed incremental re-analysis vs a full re-analysis; writes
# BENCH_analyze.json and fails below 10× cold / 5× incremental on c7552.
bench-analyze:
	$(GO) run ./cmd/benchanalyze -min-cold 10 -min-incr 5

# CI smoke variant: the two smaller circuits only, with the cold gate relaxed
# to 3× (and a 2× incremental floor) so shared CI runners don't flake; the
# full gates above run on dedicated hardware.
bench-analyze-smoke:
	$(GO) run ./cmd/benchanalyze -circuits c880,c5315 -min-cold 3 -min-incr 2

cover:
	$(GO) test -cover ./...

# Short fuzz session over the three netlist parsers and the red-team
# campaign-spec reader.
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/blif/
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/verilog/
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/benchfmt/
	$(GO) test -fuzz=FuzzParseSpec -fuzztime=30s ./internal/redteam/

# Seed corpora under internal/*/testdata/fuzz are committed — clean only
# removes generated run artifacts, never fuzz seeds.
clean:
	rm -f BENCH_*.json runreport.json tables.md chaos-metrics.json serve_smoke.json cluster_smoke.json partition_smoke.json partition-metrics.json
